//! The flight recorder: a bounded black box that dumps itself on anomaly.
//!
//! A [`FlightRecorder`] watches a [`Registry`] through periodic
//! [`observe`](FlightRecorder::observe) calls (one per fix epoch, driven
//! by the pipeline), keeping the last N per-window
//! [`MetricsSnapshot::delta`]s, the tail of a shared [`SpanRecorder`]
//! ring, and a ring of structured per-fix outcome reports fed via
//! [`record_fix`](FlightRecorder::record_fix). Each observation window is
//! evaluated against declarative [`TriggerRule`]s (fix-error spike,
//! validation-rejection burst, cache-hit-rate collapse, …); when one
//! fires, [`dump`](FlightRecorder::dump) captures everything into a
//! single JSON [`FlightDump`] — the forensic artefact to attach to a bug
//! report.
//!
//! The recorder is deliberately cheap: `observe` takes one registry
//! snapshot and a short mutex hold; everything stored is bounded by
//! [`FlightConfig`].

use crate::registry::{MetricsSnapshot, Registry};
use crate::span::SpanRecorder;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// How a [`TriggerRule`] compares its observed value to the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriggerOp {
    /// Fires when `value >= threshold` (spikes, bursts).
    AtLeast,
    /// Fires when `value <= threshold` (collapses).
    AtMost,
}

/// One declarative trigger predicate, evaluated against every observation
/// window's counter *delta*.
///
/// The observed value is the sum of the `numerator` counters; when
/// `denominator` is non-empty the value becomes
/// `numerator / denominator` (a rate). `min_events` gates noisy small
/// windows: the rule only arms once the denominator (or, for raw counts,
/// the numerator) saw at least that many events in the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerRule {
    /// Rule name, stamped on fired [`TriggerEvent`]s.
    pub name: String,
    /// Counter names summed into the numerator.
    pub numerator: Vec<String>,
    /// Counter names summed into the denominator; empty → raw count rule.
    pub denominator: Vec<String>,
    /// Comparison direction.
    pub op: TriggerOp,
    /// Threshold the observed value is compared against.
    pub threshold: f64,
    /// Minimum events in the window before the rule arms.
    pub min_events: u64,
}

impl TriggerRule {
    /// Evaluates the rule against one window delta, returning the observed
    /// value when the rule fires.
    pub fn check(&self, delta: &MetricsSnapshot) -> Option<f64> {
        let sum =
            |names: &[String]| -> u64 { names.iter().map(|n| delta.counter(n).unwrap_or(0)).sum() };
        let num = sum(&self.numerator);
        let (value, events) = if self.denominator.is_empty() {
            (num as f64, num)
        } else {
            let den = sum(&self.denominator);
            let v = if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            };
            (v, den)
        };
        if events < self.min_events {
            return None;
        }
        let fired = match self.op {
            TriggerOp::AtLeast => value >= self.threshold,
            TriggerOp::AtMost => value <= self.threshold,
        };
        fired.then_some(value)
    }
}

/// Retention and trigger configuration of a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightConfig {
    /// Observation windows retained (newest kept).
    pub window_capacity: usize,
    /// Per-fix outcome reports retained (newest kept).
    pub fix_capacity: usize,
    /// Span records included in a dump (tail of the attached ring).
    pub span_tail: usize,
    /// The trigger predicates evaluated per observation window.
    pub rules: Vec<TriggerRule>,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            window_capacity: 32,
            fix_capacity: 64,
            span_tail: 256,
            rules: Vec::new(),
        }
    }
}

/// One retained observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowDelta {
    /// Timestamp handed to [`FlightRecorder::observe`], seconds.
    pub t_s: f64,
    /// Metrics recorded during the window (zero-valued counters and empty
    /// histograms are dropped to keep the black box small).
    pub delta: MetricsSnapshot,
}

/// A fired trigger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerEvent {
    /// Window timestamp the rule fired at, seconds.
    pub t_s: f64,
    /// Name of the [`TriggerRule`] that fired.
    pub rule: String,
    /// The observed value that crossed the threshold.
    pub value: f64,
}

/// An owned span record inside a dump (span names are `&'static str` in
/// the ring; the dump owns its strings so it can round-trip through JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanDump {
    /// Span name.
    pub name: String,
    /// Start offset in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
    /// Structured arguments as a JSON map.
    pub args: Value,
}

/// The black box: everything the recorder held when it was dumped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Every trigger that fired over the recorder's lifetime, oldest
    /// first.
    pub triggered: Vec<TriggerEvent>,
    /// The retained observation windows, oldest first.
    pub windows: Vec<WindowDelta>,
    /// The tail of the attached span ring (empty when none attached).
    pub spans: Vec<SpanDump>,
    /// The retained per-fix outcome reports, oldest first.
    pub fixes: Vec<Value>,
    /// The full registry at dump time.
    pub cumulative: MetricsSnapshot,
}

struct Inner {
    last: Option<MetricsSnapshot>,
    windows: VecDeque<WindowDelta>,
    fixes: VecDeque<Value>,
    triggered: Vec<TriggerEvent>,
}

/// The recorder itself. All methods take `&self` (interior mutex), so one
/// `Arc<FlightRecorder>` can be shared between the pipeline and a dump
/// site.
pub struct FlightRecorder {
    cfg: FlightConfig,
    registry: Arc<Registry>,
    spans: Option<Arc<SpanRecorder>>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        f.debug_struct("FlightRecorder")
            .field("rules", &self.cfg.rules.len())
            .field("windows", &inner.windows.len())
            .field("fixes", &inner.fixes.len())
            .field("triggered", &inner.triggered.len())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder watching `registry` under the given configuration.
    pub fn new(cfg: FlightConfig, registry: Arc<Registry>) -> Self {
        Self {
            cfg,
            registry,
            spans: None,
            inner: Mutex::new(Inner {
                last: None,
                windows: VecDeque::new(),
                fixes: VecDeque::new(),
                triggered: Vec::new(),
            }),
        }
    }

    /// Includes the tail of `spans` in every dump.
    pub fn with_spans(mut self, spans: Arc<SpanRecorder>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Pushes one per-fix outcome report into the bounded ring. Any
    /// `Serialize` type works; the report is rendered to a value tree
    /// immediately so the ring owns no borrows.
    pub fn record_fix<T: Serialize + ?Sized>(&self, report: &T) {
        if self.cfg.fix_capacity == 0 {
            return;
        }
        let v = serde::to_value(report);
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        if inner.fixes.len() == self.cfg.fix_capacity {
            inner.fixes.pop_front();
        }
        inner.fixes.push_back(v);
    }

    /// Closes an observation window at `t_s`: snapshots the registry,
    /// stores the delta since the previous observation, evaluates every
    /// trigger rule against it and returns the rules that fired (empty on
    /// the first call — there is no window yet).
    pub fn observe(&self, t_s: f64) -> Vec<TriggerEvent> {
        let now = self.registry.snapshot();
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        let fired = match inner.last.take() {
            None => Vec::new(),
            Some(prev) => {
                let delta = now.delta(&prev);
                let fired: Vec<TriggerEvent> = self
                    .cfg
                    .rules
                    .iter()
                    .filter_map(|r| {
                        r.check(&delta).map(|value| TriggerEvent {
                            t_s,
                            rule: r.name.clone(),
                            value,
                        })
                    })
                    .collect();
                if self.cfg.window_capacity > 0 {
                    if inner.windows.len() == self.cfg.window_capacity {
                        inner.windows.pop_front();
                    }
                    inner.windows.push_back(WindowDelta {
                        t_s,
                        delta: delta.compact(),
                    });
                }
                inner.triggered.extend(fired.iter().cloned());
                fired
            }
        };
        inner.last = Some(now);
        fired
    }

    /// True once any rule has fired.
    pub fn has_triggered(&self) -> bool {
        !self
            .inner
            .lock()
            .expect("flight recorder poisoned")
            .triggered
            .is_empty()
    }

    /// Captures the black box: retained windows, the span-ring tail, the
    /// per-fix reports, every fired trigger, and the cumulative registry.
    pub fn dump(&self) -> FlightDump {
        let cumulative = self.registry.snapshot();
        let spans = match &self.spans {
            None => Vec::new(),
            Some(rec) => {
                let recent = rec.recent();
                let skip = recent.len().saturating_sub(self.cfg.span_tail);
                recent[skip..]
                    .iter()
                    .map(|r| SpanDump {
                        name: r.name.to_string(),
                        start_ns: r.start_ns,
                        dur_ns: r.dur_ns,
                        args: Value::Map(
                            r.args
                                .iter()
                                .map(|(k, v)| (k.to_string(), crate::trace::arg_value(v)))
                                .collect(),
                        ),
                    })
                    .collect()
            }
        };
        let inner = self.inner.lock().expect("flight recorder poisoned");
        FlightDump {
            triggered: inner.triggered.clone(),
            windows: inner.windows.iter().cloned().collect(),
            spans,
            fixes: inner.fixes.iter().cloned().collect(),
            cumulative,
        }
    }

    /// Serialises [`dump`](Self::dump) to `path` (compact JSON), creating
    /// parent directories.
    pub fn dump_to(&self, path: &str) -> FlightDump {
        let dump = self.dump();
        let p = std::path::Path::new(path);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent).expect("create flight dump dir");
        }
        let json = serde_json::to_string(&dump).expect("serialize flight dump");
        std::fs::write(p, json).expect("write flight dump");
        dump
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_rule(name: &str, num: &str, den: &[&str], op: TriggerOp, thr: f64) -> TriggerRule {
        TriggerRule {
            name: name.into(),
            numerator: vec![num.into()],
            denominator: den.iter().map(|s| s.to_string()).collect(),
            op,
            threshold: thr,
            min_events: 4,
        }
    }

    #[test]
    fn rate_rule_fires_on_spike_and_respects_min_events() {
        let reg = Arc::new(Registry::new());
        let rejected = reg.counter("rejected");
        let graded = reg.counter("graded");
        let rec = FlightRecorder::new(
            FlightConfig {
                rules: vec![rate_rule(
                    "fix_error_spike",
                    "rejected",
                    &["rejected", "graded"],
                    TriggerOp::AtLeast,
                    0.5,
                )],
                ..FlightConfig::default()
            },
            Arc::clone(&reg),
        );
        assert!(rec.observe(0.0).is_empty(), "first call opens the window");
        // 2 errors of 3 events: above the rate but below min_events=4.
        rejected.add(2);
        graded.add(1);
        assert!(rec.observe(1.0).is_empty(), "small windows stay quiet");
        // 4 errors of 5 events in one window: fires.
        rejected.add(4);
        graded.add(1);
        let fired = rec.observe(2.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "fix_error_spike");
        assert!((fired[0].value - 0.8).abs() < 1e-12);
        assert!(rec.has_triggered());
        // Healthy window: quiet again, but the fired event is retained.
        graded.add(10);
        assert!(rec.observe(3.0).is_empty());
        assert_eq!(rec.dump().triggered.len(), 1);
    }

    #[test]
    fn count_rule_and_atmost_collapse() {
        let reg = Arc::new(Registry::new());
        let bad = reg.counter("inbox_rejected");
        let hits = reg.counter("hits");
        let misses = reg.counter("misses");
        let rec = FlightRecorder::new(
            FlightConfig {
                rules: vec![
                    TriggerRule {
                        name: "rejection_burst".into(),
                        numerator: vec!["inbox_rejected".into()],
                        denominator: vec![],
                        op: TriggerOp::AtLeast,
                        threshold: 8.0,
                        min_events: 8,
                    },
                    TriggerRule {
                        name: "cache_collapse".into(),
                        numerator: vec!["hits".into()],
                        denominator: vec!["hits".into(), "misses".into()],
                        op: TriggerOp::AtMost,
                        threshold: 0.05,
                        min_events: 16,
                    },
                ],
                ..FlightConfig::default()
            },
            Arc::clone(&reg),
        );
        rec.observe(0.0);
        bad.add(3);
        hits.add(100);
        misses.add(1);
        assert!(rec.observe(1.0).is_empty(), "healthy window");
        bad.add(9);
        misses.add(40); // hit rate 0/40 = 0 ≤ 0.05 over ≥16 events
        let fired = rec.observe(2.0);
        let names: Vec<&str> = fired.iter().map(|f| f.rule.as_str()).collect();
        assert!(names.contains(&"rejection_burst"), "{names:?}");
        assert!(names.contains(&"cache_collapse"), "{names:?}");
    }

    #[test]
    fn rings_are_bounded_and_dump_roundtrips() {
        #[derive(Serialize)]
        struct MiniReport {
            neighbour: u64,
            outcome: String,
        }

        let reg = Arc::new(Registry::new());
        let c = reg.counter("c");
        let spans = Arc::new(SpanRecorder::new(32));
        let rec = FlightRecorder::new(
            FlightConfig {
                window_capacity: 2,
                fix_capacity: 3,
                span_tail: 2,
                rules: Vec::new(),
            },
            Arc::clone(&reg),
        )
        .with_spans(Arc::clone(&spans));

        for i in 0..5u64 {
            c.inc();
            spans.event("engine.context_hit");
            rec.record_fix(&MiniReport {
                neighbour: i,
                outcome: "miss".into(),
            });
            rec.observe(i as f64);
        }
        let dump = rec.dump();
        assert_eq!(dump.windows.len(), 2, "window ring bounded");
        assert_eq!(dump.fixes.len(), 3, "fix ring bounded");
        // Newest kept: the last report carries neighbour 4.
        assert!(matches!(
            dump.fixes.last().unwrap(),
            Value::Map(kv) if kv.iter().any(|(k, v)| k == "neighbour" && v.as_u64() == Some(4))
        ));
        if cfg!(feature = "obs") {
            assert_eq!(dump.spans.len(), 2, "span tail bounded");
        }
        assert_eq!(dump.cumulative.counter("c"), Some(5));

        let json = serde_json::to_string(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
    }

    #[test]
    fn dump_to_writes_the_black_box() {
        let reg = Arc::new(Registry::new());
        reg.counter("c").inc();
        let rec = FlightRecorder::new(FlightConfig::default(), reg);
        rec.observe(0.0);
        rec.observe(1.0);
        let path = std::env::temp_dir().join("rups-flight-test.json");
        let path = path.to_string_lossy().into_owned();
        let dump = rec.dump_to(&path);
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let back: FlightDump = serde_json::from_str(&raw).unwrap();
        assert_eq!(back, dump);
        assert_eq!(back.windows.len(), 1);
    }
}

//! A lightweight span/tracing facade with a ring-buffer recorder.
//!
//! A *span* is a named interval of wall-clock time; an *event* is a
//! zero-duration span. Completed records land in a fixed-capacity ring
//! buffer (newest overwrite oldest), cheap enough to leave enabled in
//! experiments while staying bounded. The whole facade is gated on the
//! `obs` feature: with it disabled, [`SpanRecorder::span`] returns an inert
//! guard, no clock is read, nothing is stored, and the types compile down
//! to nothing.
//!
//! ```
//! use rups_obs::SpanRecorder;
//!
//! let rec = SpanRecorder::new(64);
//! {
//!     let _s = rec.span("engine.query");
//!     // ... work ...
//! }
//! rec.event("link.drop");
//! # #[cfg(feature = "obs")]
//! assert_eq!(rec.recorded_total(), 2);
//! ```

use std::sync::Mutex;

/// A bounded bag of structured span arguments: up to [`SpanArgs::MAX`]
/// `(key, value)` pairs of static keys and integer values (neighbour ids,
/// epochs, window lengths, …). `Copy` and allocation-free so it rides along
/// in the span ring without widening the hot path; pairs pushed past the
/// cap are silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanArgs {
    entries: [(&'static str, i64); Self::MAX],
    len: u8,
}

impl SpanArgs {
    /// Maximum number of `(key, value)` pairs one record can carry.
    pub const MAX: usize = 4;

    /// An empty argument bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the bag with `(key, value)` appended (dropped when already
    /// at capacity), builder-style:
    /// `SpanArgs::new().with("neighbour", 7).with("epoch", 42)`.
    pub fn with(mut self, key: &'static str, value: i64) -> Self {
        if (self.len as usize) < Self::MAX {
            self.entries[self.len as usize] = (key, value);
            self.len += 1;
        }
        self
    }

    /// Number of pairs held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no pairs are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The held pairs, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.entries[..self.len as usize].iter().copied()
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<i64> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One completed span (or event, when `dur_ns == 0` by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"engine.context_rebuild"`.
    pub name: &'static str,
    /// Start offset in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
    /// Structured arguments attached to the record (empty by default).
    pub args: SpanArgs,
}

#[cfg(feature = "obs")]
struct Ring {
    slots: Vec<SpanRecord>,
    /// Next write position.
    next: usize,
    /// Records ever written (so readers can tell wraparound from fill).
    total: u64,
}

/// Fixed-capacity recorder of completed spans.
pub struct SpanRecorder {
    capacity: usize,
    #[cfg(feature = "obs")]
    origin: std::time::Instant,
    #[cfg(feature = "obs")]
    ring: Mutex<Ring>,
    #[cfg(not(feature = "obs"))]
    _inert: Mutex<()>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.capacity)
            .field("recorded_total", &self.recorded_total())
            .finish()
    }
}

impl SpanRecorder {
    /// A recorder keeping the most recent `capacity` records.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs at least one slot");
        SpanRecorder {
            capacity,
            #[cfg(feature = "obs")]
            origin: std::time::Instant::now(),
            #[cfg(feature = "obs")]
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                next: 0,
                total: 0,
            }),
            #[cfg(not(feature = "obs"))]
            _inert: Mutex::new(()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Opens a span; it records itself when the guard drops. Inert (no
    /// clock read, nothing stored) without the `obs` feature.
    #[inline]
    pub fn span<'a>(&'a self, name: &'static str) -> SpanGuard<'a> {
        self.span_args(name, SpanArgs::new())
    }

    /// Like [`span`](Self::span) but with structured arguments attached to
    /// the eventual record (the guard can add more via
    /// [`SpanGuard::set_args`] before it drops).
    #[inline]
    pub fn span_args<'a>(&'a self, name: &'static str, args: SpanArgs) -> SpanGuard<'a> {
        #[cfg(feature = "obs")]
        {
            SpanGuard {
                rec: self,
                name,
                start: std::time::Instant::now(),
                args,
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (name, args);
            SpanGuard {
                _rec: std::marker::PhantomData,
            }
        }
    }

    /// Records a zero-duration event.
    #[inline]
    pub fn event(&self, name: &'static str) {
        self.event_args(name, SpanArgs::new());
    }

    /// Records a zero-duration event carrying structured arguments.
    #[inline]
    pub fn event_args(&self, name: &'static str, args: SpanArgs) {
        #[cfg(feature = "obs")]
        self.push(SpanRecord {
            name,
            start_ns: self.origin.elapsed().as_nanos() as u64,
            dur_ns: 0,
            args,
        });
        #[cfg(not(feature = "obs"))]
        let _ = (name, args);
    }

    /// Records ever written (including ones already overwritten). Always 0
    /// without the `obs` feature.
    pub fn recorded_total(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.ring.lock().expect("span ring poisoned").total
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// The retained records, oldest first. Empty without the `obs`
    /// feature.
    pub fn recent(&self) -> Vec<SpanRecord> {
        #[cfg(feature = "obs")]
        {
            let ring = self.ring.lock().expect("span ring poisoned");
            if ring.slots.len() < self.capacity {
                ring.slots.clone()
            } else {
                let mut out = Vec::with_capacity(self.capacity);
                out.extend_from_slice(&ring.slots[ring.next..]);
                out.extend_from_slice(&ring.slots[..ring.next]);
                out
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Vec::new()
        }
    }

    /// The records written since a previous
    /// [`recorded_total`](Self::recorded_total) watermark, oldest first, plus the new
    /// watermark to pass next time. Records that already fell off the ring
    /// (more than `capacity` writes since the watermark) are lost — the
    /// returned watermark still advances past them, so a slow reader skips
    /// rather than stalls. `(watermark, empty)` without the `obs` feature.
    ///
    /// This is the feed for batch consumers such as
    /// [`TailSampler::ingest`](crate::TailSampler::ingest): poll it
    /// between epochs and hand the batch over, without adding anything to
    /// the record hot path.
    pub fn take_since(&self, watermark: u64) -> (u64, Vec<SpanRecord>) {
        #[cfg(feature = "obs")]
        {
            let ring = self.ring.lock().expect("span ring poisoned");
            let new = ring.total.saturating_sub(watermark);
            let avail = (new as usize).min(ring.slots.len());
            if avail == 0 {
                return (ring.total, Vec::new());
            }
            // Oldest-first view of the ring, then its `avail`-record tail.
            let mut out = Vec::with_capacity(avail);
            if ring.slots.len() < self.capacity {
                out.extend_from_slice(&ring.slots[ring.slots.len() - avail..]);
            } else {
                let ordered: Vec<SpanRecord> = ring.slots[ring.next..]
                    .iter()
                    .chain(ring.slots[..ring.next].iter())
                    .copied()
                    .collect();
                out.extend_from_slice(&ordered[ordered.len() - avail..]);
            }
            (ring.total, out)
        }
        #[cfg(not(feature = "obs"))]
        {
            (watermark, Vec::new())
        }
    }

    #[cfg(feature = "obs")]
    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        ring.total += 1;
        if ring.slots.len() < self.capacity {
            ring.slots.push(record);
            return;
        }
        let at = ring.next;
        ring.slots[at] = record;
        ring.next = (at + 1) % self.capacity;
    }
}

/// Guard for an open span; records it into the recorder on drop.
#[must_use = "a dropped guard closes the span immediately; bind it to a variable"]
pub struct SpanGuard<'a> {
    #[cfg(feature = "obs")]
    rec: &'a SpanRecorder,
    #[cfg(feature = "obs")]
    name: &'static str,
    #[cfg(feature = "obs")]
    start: std::time::Instant,
    #[cfg(feature = "obs")]
    args: SpanArgs,
    #[cfg(not(feature = "obs"))]
    _rec: std::marker::PhantomData<&'a SpanRecorder>,
}

impl SpanGuard<'_> {
    /// Replaces the arguments the record will carry when the guard drops
    /// (for values only known mid-span, e.g. a chosen window length).
    #[inline]
    pub fn set_args(&mut self, args: SpanArgs) {
        #[cfg(feature = "obs")]
        {
            self.args = args;
        }
        #[cfg(not(feature = "obs"))]
        let _ = args;
    }
}

#[cfg(feature = "obs")]
impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let start_ns = self.start.duration_since(self.rec.origin).as_nanos() as u64;
        self.rec.push(SpanRecord {
            name: self.name,
            start_ns,
            dur_ns,
            args: self.args,
        });
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let rec = SpanRecorder::new(8);
        {
            let _a = rec.span("a");
        }
        rec.event("b");
        let got = rec.recent();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "a");
        assert_eq!(got[1].name, "b");
        assert_eq!(got[1].dur_ns, 0, "events are zero-duration");
        assert!(got[0].start_ns <= got[1].start_ns);
        assert_eq!(rec.recorded_total(), 2);
    }

    #[test]
    fn ring_wraps_around_keeping_the_newest() {
        let rec = SpanRecorder::new(4);
        let names: [&'static str; 10] =
            ["e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
        for name in names {
            rec.event(name);
        }
        assert_eq!(rec.recorded_total(), 10);
        let got = rec.recent();
        assert_eq!(got.len(), 4, "capacity bounds retention");
        let kept: Vec<&str> = got.iter().map(|r| r.name).collect();
        assert_eq!(kept, ["e6", "e7", "e8", "e9"], "oldest first, newest kept");
        // Timestamps stay monotone across the wrap.
        assert!(got.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn wraparound_is_exact_at_capacity_boundaries() {
        let rec = SpanRecorder::new(3);
        rec.event("a");
        rec.event("b");
        rec.event("c"); // exactly full, no wrap yet
        assert_eq!(
            rec.recent().iter().map(|r| r.name).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        rec.event("d"); // first overwrite
        assert_eq!(
            rec.recent().iter().map(|r| r.name).collect::<Vec<_>>(),
            ["b", "c", "d"]
        );
    }

    #[test]
    fn single_slot_ring() {
        let rec = SpanRecorder::new(1);
        rec.event("x");
        rec.event("y");
        let got = rec.recent();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "y");
        assert_eq!(rec.recorded_total(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = SpanRecorder::new(0);
    }

    #[test]
    fn guard_measures_across_its_whole_scope() {
        // The `#[must_use]` on SpanGuard exists because `rec.span("x");`
        // drops immediately and records ~0 ns. Held across a scope doing
        // real work, the guard must measure that work.
        let rec = SpanRecorder::new(8);
        let sleep = std::time::Duration::from_millis(15);
        {
            let _g = rec.span("work");
            std::thread::sleep(sleep);
        }
        let got = rec.recent();
        assert_eq!(got.len(), 1);
        assert!(
            got[0].dur_ns >= sleep.as_nanos() as u64 / 2,
            "span must cover the slept scope, got {} ns",
            got[0].dur_ns
        );
    }

    #[test]
    fn args_ride_along_in_the_ring() {
        let rec = SpanRecorder::new(8);
        rec.event_args(
            "inbox.accept",
            SpanArgs::new().with("neighbour", 7).with("epoch", 42),
        );
        {
            let mut g = rec.span_args("engine.query", SpanArgs::new().with("neighbour", 7));
            g.set_args(
                SpanArgs::new()
                    .with("neighbour", 7)
                    .with("window_len_m", 85),
            );
        }
        let got = rec.recent();
        assert_eq!(got[0].args.get("neighbour"), Some(7));
        assert_eq!(got[0].args.get("epoch"), Some(42));
        assert_eq!(got[0].args.len(), 2);
        assert_eq!(got[1].args.get("window_len_m"), Some(85));
        assert_eq!(got[1].args.get("missing"), None);
    }

    #[test]
    fn take_since_reads_incrementally_and_skips_overwritten() {
        let rec = SpanRecorder::new(4);
        rec.event("a");
        rec.event("b");
        let (mark, batch) = rec.take_since(0);
        assert_eq!(mark, 2);
        assert_eq!(
            batch.iter().map(|r| r.name).collect::<Vec<_>>(),
            ["a", "b"]
        );
        // Nothing new: empty batch, watermark unchanged.
        let (mark2, batch2) = rec.take_since(mark);
        assert_eq!((mark2, batch2.len()), (2, 0));
        // Write past capacity since the watermark: the lost records are
        // skipped, only the retained tail comes back.
        for name in ["c", "d", "e", "f", "g"] {
            rec.event(name);
        }
        let (mark3, batch3) = rec.take_since(mark);
        assert_eq!(mark3, 7);
        assert_eq!(
            batch3.iter().map(|r| r.name).collect::<Vec<_>>(),
            ["d", "e", "f", "g"],
            "capacity bounds the catch-up"
        );
    }

    #[test]
    fn args_cap_drops_excess_pairs() {
        let mut a = SpanArgs::new();
        for i in 0..10 {
            a = a.with("k", i);
        }
        assert_eq!(a.len(), SpanArgs::MAX);
        assert!(!a.is_empty());
        assert_eq!(a.iter().count(), SpanArgs::MAX);
    }
}

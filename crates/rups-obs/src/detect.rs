//! Online anomaly detection over per-window metric deltas.
//!
//! The passive telemetry stack ([`Registry`] snapshots,
//! [`FleetAggregator`](crate::FleetAggregator) merges, SLO verdicts) only
//! reports what happened; this module watches the per-window delta stream
//! *as it arrives* and raises typed [`Alarm`]s the moment a bound metric
//! departs from its own recent behaviour. Two detector families cover the
//! two failure shapes seen on periodic-broadcast V2V links:
//!
//! - [`DetectorKind::EwmaZScore`] — an exponentially weighted mean plus an
//!   EWMA of absolute residuals (a streaming stand-in for the MAD) yields a
//!   robust z-score; it fires on *level shifts* such as a burst-loss spike
//!   collapsing arrivals within one window.
//! - [`DetectorKind::Cusum`] — a one-sided cumulative sum of normalised
//!   residuals above a slack band; it accumulates small per-window
//!   deviations and fires on *slow drifts* a z-score never sees, such as a
//!   kernel regression inflating p99 latency a few percent per window.
//!
//! Detectors are *declaratively bound* to metrics via [`DetectorSpec`]: a
//! reading (histogram p99 or counter ratio), a direction, and arming
//! thresholds. Windows with fewer than `min_events` supporting events
//! neither update the baseline nor fire — an idle window is not evidence.
//! The first `warmup_windows` observed windows train the baseline silently
//! so a clean warmup segment can never false-alarm.
//!
//! ```
//! use rups_obs::{DetectorBank, DetectorSpec, Registry};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits");
//! let total = reg.counter("cache_lookups");
//! let mut bank = DetectorBank::new(vec![DetectorSpec::counter_ratio_down(
//!     "cache_hit_rate",
//!     &["cache_hits"],
//!     &["cache_lookups"],
//! )]);
//! let mut prev = reg.snapshot();
//! for window in 0..12 {
//!     // 90% hit rate while healthy, collapsing to zero at window 8.
//!     for k in 0..50u64 {
//!         total.inc();
//!         if window < 8 && k % 10 != 0 {
//!             hits.inc();
//!         }
//!     }
//!     let snap = reg.snapshot();
//!     let alarms = bank.observe(window as f64, &snap.delta(&prev));
//!     prev = snap;
//!     assert_eq!(!alarms.is_empty(), window >= 8, "window {window}");
//!     if !alarms.is_empty() {
//!         assert_eq!(alarms[0].detector, "cache_hit_rate");
//!     }
//! }
//! ```

use crate::registry::{MetricsSnapshot, Registry};
use serde::{Deserialize, Serialize};

/// Counter incremented once per emitted [`Alarm`] when the bank is given a
/// registry via [`DetectorBank::with_registry`].
pub const ALARMS_TOTAL: &str = "rups_obs_alarms_total";

/// Which streaming detector watches the reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Robust z-score against an EWMA baseline: fires on level shifts.
    EwmaZScore,
    /// One-sided cumulative-sum changepoint detector: fires on slow drifts.
    Cusum,
}

/// Which side of the baseline is anomalous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Fire when the reading rises above baseline (latency, rejections).
    Up,
    /// Fire when the reading falls below baseline (availability, arrivals).
    Down,
}

/// How the scalar reading is extracted from a window delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadingKind {
    /// p99 of the named histogram; the window's event count arms it.
    HistogramP99,
    /// Sum of `numerators` over sum of `denominators` (counters); the
    /// denominator sum arms it.
    CounterRatio,
}

/// One detector, declaratively bound to a metric reading.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// Detector name carried on every alarm, e.g. `"fix_p99_latency"`.
    pub name: String,
    /// Streaming algorithm watching the reading.
    pub kind: DetectorKind,
    /// How the reading is computed from a window delta.
    pub reading: ReadingKind,
    /// Direction considered anomalous.
    pub direction: Direction,
    /// Numerator metric names (the histogram name for
    /// [`ReadingKind::HistogramP99`], counter names summed for
    /// [`ReadingKind::CounterRatio`]).
    pub numerators: Vec<String>,
    /// Denominator counter names summed for [`ReadingKind::CounterRatio`];
    /// unused (empty) for histogram readings.
    pub denominators: Vec<String>,
    /// Minimum supporting events in a window before it counts at all.
    pub min_events: u64,
    /// Score that fires the alarm: a robust z for
    /// [`DetectorKind::EwmaZScore`], the accumulated sum for
    /// [`DetectorKind::Cusum`].
    pub threshold: f64,
    /// EWMA smoothing factor in `(0, 1]` for the mean/deviation baselines.
    pub alpha: f64,
    /// Armed windows consumed silently before the detector may fire.
    pub warmup_windows: u32,
    /// Absolute floor on the deviation estimate, in reading units. A
    /// deterministic warmup can legitimately have near-zero spread; the
    /// floor keeps a first small wobble from scoring as an infinite z.
    pub min_deviation: f64,
    /// CUSUM slack in normalised-residual units (ignored by EWMA): the
    /// dead band drifts must exceed before they accumulate.
    pub slack: f64,
}

impl DetectorSpec {
    /// EWMA z-score on a histogram p99, firing when latency rises.
    pub fn histogram_p99_up(name: &str, histogram: &str) -> Self {
        DetectorSpec {
            name: name.to_string(),
            kind: DetectorKind::EwmaZScore,
            reading: ReadingKind::HistogramP99,
            direction: Direction::Up,
            numerators: vec![histogram.to_string()],
            denominators: Vec::new(),
            min_events: 4,
            threshold: 6.0,
            alpha: 0.3,
            warmup_windows: 3,
            min_deviation: 2e5, // 0.2 ms: below scheduler noise on a p99
            slack: 0.5,
        }
    }

    /// EWMA z-score on a counter ratio, firing when the ratio collapses.
    pub fn counter_ratio_down(name: &str, numerators: &[&str], denominators: &[&str]) -> Self {
        DetectorSpec {
            name: name.to_string(),
            kind: DetectorKind::EwmaZScore,
            reading: ReadingKind::CounterRatio,
            direction: Direction::Down,
            numerators: numerators.iter().map(|s| s.to_string()).collect(),
            denominators: denominators.iter().map(|s| s.to_string()).collect(),
            min_events: 4,
            threshold: 6.0,
            alpha: 0.3,
            warmup_windows: 3,
            min_deviation: 0.02,
            slack: 0.5,
        }
    }

    /// CUSUM on a counter ratio, firing when the ratio drifts upward.
    pub fn counter_ratio_cusum_up(name: &str, numerators: &[&str], denominators: &[&str]) -> Self {
        DetectorSpec {
            name: name.to_string(),
            kind: DetectorKind::Cusum,
            reading: ReadingKind::CounterRatio,
            direction: Direction::Up,
            numerators: numerators.iter().map(|s| s.to_string()).collect(),
            denominators: denominators.iter().map(|s| s.to_string()).collect(),
            min_events: 4,
            threshold: 8.0,
            alpha: 0.3,
            warmup_windows: 3,
            min_deviation: 0.02,
            slack: 0.5,
        }
    }

    /// The scalar reading and its arming event count for one window delta,
    /// or `None` when the metrics are absent / the reading is undefined.
    fn read(&self, delta: &MetricsSnapshot) -> Option<(f64, u64)> {
        match self.reading {
            ReadingKind::HistogramP99 => {
                let name = self.numerators.first()?;
                let h = delta.histograms.iter().find(|h| &h.name == name)?;
                if h.count == 0 {
                    return None;
                }
                Some((h.p99, h.count))
            }
            ReadingKind::CounterRatio => {
                let sum = |names: &[String]| -> u64 {
                    names
                        .iter()
                        .filter_map(|n| delta.counter(n))
                        .fold(0u64, u64::saturating_add)
                };
                let den = sum(&self.denominators);
                if den == 0 {
                    return None;
                }
                Some((sum(&self.numerators) as f64 / den as f64, den))
            }
        }
    }
}

/// A detection, with enough metadata to localise *when* it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Name of the firing [`DetectorSpec`].
    pub detector: String,
    /// Algorithm that fired.
    pub kind: DetectorKind,
    /// Harness timestamp of the firing window (as passed to
    /// [`DetectorBank::observe`]).
    pub t_s: f64,
    /// Zero-based index of the firing window in the observed stream.
    pub window_index: u64,
    /// The reading that fired.
    pub value: f64,
    /// The EWMA baseline at firing time.
    pub baseline: f64,
    /// The detector score (robust z or accumulated CUSUM sum).
    pub score: f64,
    /// The configured firing threshold, for context.
    pub threshold: f64,
}

/// Per-detector streaming state.
#[derive(Debug, Clone)]
struct DetectorState {
    /// EWMA of the reading.
    mean: f64,
    /// EWMA of `|reading - mean|` (streaming MAD stand-in).
    dev: f64,
    /// One-sided CUSUM accumulator.
    sum: f64,
    /// Armed windows consumed so far (includes warmup).
    armed_windows: u32,
    /// Whether the EWMAs have been seeded.
    primed: bool,
}

impl DetectorState {
    fn new() -> Self {
        DetectorState {
            mean: 0.0,
            dev: 0.0,
            sum: 0.0,
            armed_windows: 0,
            primed: false,
        }
    }
}

/// A bank of streaming detectors sharing one window stream.
///
/// Feed every aggregation-window delta to [`observe`](Self::observe); the
/// bank advances each bound detector and returns the alarms that fired on
/// that window. Attach a registry with
/// [`with_registry`](Self::with_registry) to count alarms into
/// [`ALARMS_TOTAL`].
#[derive(Debug)]
pub struct DetectorBank {
    specs: Vec<DetectorSpec>,
    states: Vec<DetectorState>,
    windows_seen: u64,
    alarms_total: Option<crate::registry::Counter>,
}

impl DetectorBank {
    /// A bank over the given detector bindings.
    pub fn new(specs: Vec<DetectorSpec>) -> Self {
        let states = specs.iter().map(|_| DetectorState::new()).collect();
        DetectorBank {
            specs,
            states,
            windows_seen: 0,
            alarms_total: None,
        }
    }

    /// Counts every emitted alarm into `registry` as [`ALARMS_TOTAL`].
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.alarms_total = Some(registry.counter(ALARMS_TOTAL));
        self
    }

    /// The detector bindings the bank was built with.
    pub fn specs(&self) -> &[DetectorSpec] {
        &self.specs
    }

    /// Windows observed so far (fired or not).
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Advances every detector over one window delta, returning the alarms
    /// that fired. `t_s` is the harness timestamp stamped onto alarms.
    pub fn observe(&mut self, t_s: f64, delta: &MetricsSnapshot) -> Vec<Alarm> {
        let window_index = self.windows_seen;
        self.windows_seen += 1;
        let mut alarms = Vec::new();
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            let Some((value, events)) = spec.read(delta) else {
                continue;
            };
            if events < spec.min_events || !value.is_finite() {
                continue;
            }
            if !state.primed {
                state.mean = value;
                state.dev = 0.0;
                state.primed = true;
                state.armed_windows = 1;
                continue;
            }
            let residual = value - state.mean;
            // 1.4826 rescales a MAD-like deviation to a Gaussian sigma.
            let sigma = (1.4826 * state.dev).max(spec.min_deviation);
            let directed = match spec.direction {
                Direction::Up => residual / sigma,
                Direction::Down => -residual / sigma,
            };
            state.armed_windows += 1;
            let warm = state.armed_windows > spec.warmup_windows;
            let fired = match spec.kind {
                DetectorKind::EwmaZScore => warm && directed >= spec.threshold,
                DetectorKind::Cusum => {
                    if warm {
                        state.sum = (state.sum + directed - spec.slack).max(0.0);
                    }
                    state.sum >= spec.threshold
                }
            };
            let score = match spec.kind {
                DetectorKind::EwmaZScore => directed,
                DetectorKind::Cusum => state.sum,
            };
            if fired {
                alarms.push(Alarm {
                    detector: spec.name.clone(),
                    kind: spec.kind,
                    t_s,
                    window_index,
                    value,
                    baseline: state.mean,
                    score,
                    threshold: spec.threshold,
                });
                if let DetectorKind::Cusum = spec.kind {
                    state.sum = 0.0;
                }
                // A firing window is evidence of the fault, not of a new
                // baseline: freeze the EWMAs so a sustained fault keeps
                // scoring against the healthy level.
                continue;
            }
            // Likewise a nonzero CUSUM accumulator is pending drift
            // evidence: training the baseline on it would let the EWMA
            // chase the drift and the sum never reach threshold.
            if spec.kind == DetectorKind::Cusum && state.sum > 0.0 {
                continue;
            }
            state.mean += spec.alpha * residual;
            state.dev += spec.alpha * (residual.abs() - state.dev);
        }
        if let Some(c) = &self.alarms_total {
            c.add(alarms.len() as u64);
        }
        alarms
    }
}

/// The default detector bindings for a RUPS node's window stream: p99
/// query latency (level shift), fix availability (level shift down),
/// inbox rejection rate (drift up) and fuse edge-rejection rate (drift
/// up). Metric names follow the workspace convention (see
/// `default_flight_config` in rups-core for the producing sites).
pub fn default_detectors() -> Vec<DetectorSpec> {
    const GRADES: [&str; 3] = [
        "rups_core_quality_grade_high",
        "rups_core_quality_grade_medium",
        "rups_core_quality_grade_low",
    ];
    const ASSESSED: [&str; 4] = [
        "rups_core_quality_grade_high",
        "rups_core_quality_grade_medium",
        "rups_core_quality_grade_low",
        "rups_core_quality_rejected",
    ];
    const INBOX_REJECTS: [&str; 4] = [
        "rups_core_inbox_rejected_malformed",
        "rups_core_inbox_rejected_channel_mismatch",
        "rups_core_inbox_rejected_undersized",
        "rups_core_inbox_rejected_stale",
    ];
    const INBOX_ALL: [&str; 6] = [
        "rups_core_inbox_rejected_malformed",
        "rups_core_inbox_rejected_channel_mismatch",
        "rups_core_inbox_rejected_undersized",
        "rups_core_inbox_rejected_stale",
        "rups_core_inbox_accepted",
        "rups_core_inbox_ignored_outdated",
    ];
    vec![
        DetectorSpec::histogram_p99_up("fix_p99_latency", "rups_core_engine_query_ns"),
        DetectorSpec::counter_ratio_down("fix_availability", &GRADES, &ASSESSED),
        DetectorSpec::counter_ratio_cusum_up(
            "validation_rejection_rate",
            &INBOX_REJECTS,
            &INBOX_ALL,
        ),
        DetectorSpec::counter_ratio_cusum_up(
            "fuse_rejection_rate",
            &["rups_fuse_edges_rejected"],
            &["rups_fuse_solves"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio_delta(reg: &Registry, prev: &mut MetricsSnapshot) -> MetricsSnapshot {
        let snap = reg.snapshot();
        let d = snap.delta(prev);
        *prev = snap;
        d
    }

    #[test]
    fn ewma_fires_on_level_shift_and_not_on_clean_warmup() {
        let reg = Registry::new();
        let ok = reg.counter("ok");
        let all = reg.counter("all");
        let mut bank = DetectorBank::new(vec![DetectorSpec::counter_ratio_down(
            "avail",
            &["ok"],
            &["all"],
        )]);
        let mut prev = reg.snapshot();
        let mut first_fire = None;
        for w in 0..20u64 {
            for k in 0..40u64 {
                all.inc();
                // Healthy 0.9 availability with mild wobble, then collapse.
                let healthy = k % 10 != 0 && (k + w) % 17 != 0;
                if w < 12 && healthy {
                    ok.inc();
                }
            }
            let alarms = bank.observe(w as f64, &ratio_delta(&reg, &mut prev));
            if w < 12 {
                assert!(alarms.is_empty(), "false alarm on clean window {w}");
            } else if first_fire.is_none() && !alarms.is_empty() {
                first_fire = Some(w);
                assert_eq!(alarms[0].detector, "avail");
                assert_eq!(alarms[0].window_index, w);
                assert!(alarms[0].score >= alarms[0].threshold);
            }
        }
        assert_eq!(first_fire, Some(12), "level shift must fire immediately");
    }

    #[test]
    fn cusum_accumulates_a_slow_drift() {
        let reg = Registry::new();
        let rej = reg.counter("rej");
        let all = reg.counter("all");
        let mut bank = DetectorBank::new(vec![DetectorSpec::counter_ratio_cusum_up(
            "rej_rate",
            &["rej"],
            &["all"],
        )]);
        let mut prev = reg.snapshot();
        let mut fired_at = None;
        for w in 0..40u64 {
            // 5% baseline; from window 10 drift up 2 points per window —
            // too slow for any single-window z, obvious in accumulation.
            let pct = if w < 10 { 5 } else { 5 + 2 * (w - 10) };
            for k in 0..100u64 {
                all.inc();
                if k < pct.min(100) {
                    rej.inc();
                }
            }
            let alarms = bank.observe(w as f64, &ratio_delta(&reg, &mut prev));
            if w < 10 {
                assert!(alarms.is_empty(), "false alarm on clean window {w}");
            }
            if fired_at.is_none() && !alarms.is_empty() {
                assert_eq!(alarms[0].kind, DetectorKind::Cusum);
                fired_at = Some(w);
            }
        }
        let w = fired_at.expect("drift must eventually fire");
        assert!((10..18).contains(&w), "drift detected at window {w}");
    }

    #[test]
    fn histogram_p99_detector_fires_on_slowdown() {
        let reg = Registry::new();
        let lat = reg.histogram("q_ns");
        let mut bank =
            DetectorBank::new(vec![DetectorSpec::histogram_p99_up("p99", "q_ns")]).with_registry(&reg);
        let mut prev = reg.snapshot();
        let mut fired = None;
        for w in 0..16u64 {
            for k in 0..32u64 {
                // ~1 ms healthy, 20x slowdown from window 10.
                let base = if w < 10 { 1_000_000 } else { 20_000_000 };
                lat.record(base + k * 10_000);
            }
            let snap = reg.snapshot();
            let alarms = bank.observe(w as f64, &snap.delta(&prev));
            prev = snap;
            if w < 10 {
                assert!(alarms.is_empty(), "false alarm on window {w}");
            } else if fired.is_none() && !alarms.is_empty() {
                fired = Some(w);
            }
        }
        assert_eq!(fired, Some(10));
        // Baselines freeze on firing windows, so the sustained fault
        // re-alarms on every one of the six degraded windows.
        assert_eq!(reg.snapshot().counter(ALARMS_TOTAL), Some(6));
    }

    #[test]
    fn under_armed_windows_neither_fire_nor_train() {
        let reg = Registry::new();
        let ok = reg.counter("ok");
        let all = reg.counter("all");
        let mut spec = DetectorSpec::counter_ratio_down("avail", &["ok"], &["all"]);
        spec.min_events = 50;
        let mut bank = DetectorBank::new(vec![spec]);
        let mut prev = reg.snapshot();
        // Ten windows of 10 events each: all below min_events.
        for w in 0..10u64 {
            for _ in 0..10u64 {
                all.inc();
            }
            let alarms = bank.observe(w as f64, &ratio_delta(&reg, &mut prev));
            assert!(alarms.is_empty());
        }
        // A zero-availability window with enough events still cannot fire:
        // the baseline was never primed, so this window primes it instead.
        for _ in 0..60u64 {
            all.inc();
            ok.inc();
        }
        assert!(bank
            .observe(10.0, &ratio_delta(&reg, &mut prev))
            .is_empty());
        assert_eq!(bank.windows_seen(), 11);
    }

    #[test]
    fn default_bindings_cover_the_four_slo_axes() {
        let specs = default_detectors();
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "fix_p99_latency",
                "fix_availability",
                "validation_rejection_rate",
                "fuse_rejection_rate"
            ]
        );
        assert!(specs
            .iter()
            .all(|s| s.threshold > 0.0 && s.alpha > 0.0 && s.alpha <= 1.0));
    }

    #[test]
    fn alarm_round_trips_through_json() {
        let a = Alarm {
            detector: "fix_p99_latency".into(),
            kind: DetectorKind::EwmaZScore,
            t_s: 120.0,
            window_index: 7,
            value: 2.5e8,
            baseline: 1.1e6,
            score: 11.0,
            threshold: 6.0,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Alarm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}

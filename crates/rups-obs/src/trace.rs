//! Chrome trace-event JSON export of a [`SpanRecorder`] ring.
//!
//! [`chrome_trace`] renders recorded spans into the Trace Event Format
//! that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one JSON object with a `traceEvents` array. Spans become
//! `ph: "X"` complete events (microsecond `ts`/`dur`), zero-duration
//! events become `ph: "i"` thread-scoped instants, and every component is
//! mapped onto its own named track (`ph: "M"` `thread_name` metadata)
//! keyed by the span-name prefix before the first `.` — so `engine.*`,
//! `inbox.*`, `link.*` and `codec.*` records land on separate rows of the
//! timeline. [`SpanArgs`] pairs surface as the event's `args` object.

use crate::span::{SpanArgs, SpanRecord, SpanRecorder};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// One event of the Chrome Trace Event Format. Only the fields this
/// exporter emits are modelled; viewers ignore whatever they don't need
/// (`dur` on instants, `s` on complete events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceEvent {
    /// Event name (the span name, or `thread_name` for metadata).
    pub name: String,
    /// Category: the component the event belongs to.
    pub cat: String,
    /// Phase: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Start timestamp in microseconds since the recorder's origin.
    pub ts: f64,
    /// Duration in microseconds (0 for instants and metadata).
    pub dur: f64,
    /// Process id; this exporter uses a single process `1`.
    pub pid: u64,
    /// Thread id: one per component track.
    pub tid: u64,
    /// Instant scope (`"t"` thread-scoped for instants, empty otherwise).
    pub s: String,
    /// Structured arguments (`{}` when none).
    pub args: Value,
}

/// A loadable trace: the object form of the format, `{"traceEvents": […]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The events, metadata first, then records oldest-first.
    pub traceEvents: Vec<ChromeTraceEvent>,
}

impl ChromeTrace {
    /// Events that represent recorded spans/instants (phases `X` and `i`),
    /// i.e. everything except per-track metadata.
    pub fn span_events(&self) -> impl Iterator<Item = &ChromeTraceEvent> {
        self.traceEvents.iter().filter(|e| e.ph != "M")
    }
}

/// The track a span name belongs to: the prefix before the first `.`
/// (`"engine.query"` → `"engine"`), or the whole name when undotted.
pub fn component_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders one span argument as a JSON value. Non-negative values map to
/// `UInt` — the variant the JSON parser produces for unsigned literals —
/// so an exported trace compares equal after a parse round-trip.
pub(crate) fn arg_value(v: i64) -> Value {
    match u64::try_from(v) {
        Ok(u) => Value::UInt(u),
        Err(_) => Value::Int(v),
    }
}

fn args_value(args: &SpanArgs) -> Value {
    Value::Map(
        args.iter()
            .map(|(k, v)| (k.to_string(), arg_value(v)))
            .collect(),
    )
}

/// Renders span records (oldest first, as [`SpanRecorder::recent`]
/// returns them) into a loadable [`ChromeTrace`].
pub fn chrome_trace(records: &[SpanRecord]) -> ChromeTrace {
    // Stable track order: components sorted by name, tid assigned 1-based.
    let mut components: Vec<&str> = records.iter().map(|r| component_of(r.name)).collect();
    components.sort_unstable();
    components.dedup();
    let tid_of = |name: &str| -> u64 {
        let c = component_of(name);
        components.iter().position(|&x| x == c).unwrap_or(0) as u64 + 1
    };

    let mut events = Vec::with_capacity(components.len() + records.len());
    for (i, c) in components.iter().enumerate() {
        events.push(ChromeTraceEvent {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0.0,
            dur: 0.0,
            pid: 1,
            tid: i as u64 + 1,
            s: String::new(),
            args: Value::Map(vec![("name".into(), Value::Str((*c).into()))]),
        });
    }
    for r in records {
        let instant = r.dur_ns == 0;
        events.push(ChromeTraceEvent {
            name: r.name.into(),
            cat: component_of(r.name).into(),
            ph: if instant { "i" } else { "X" }.into(),
            ts: r.start_ns as f64 / 1_000.0,
            dur: r.dur_ns as f64 / 1_000.0,
            pid: 1,
            tid: tid_of(r.name),
            s: if instant { "t" } else { "" }.into(),
            args: args_value(&r.args),
        });
    }
    ChromeTrace {
        traceEvents: events,
    }
}

/// [`chrome_trace`] over the retained ring contents of a recorder,
/// keeping only the newest `max_events` records.
pub fn chrome_trace_tail(rec: &SpanRecorder, max_events: usize) -> ChromeTrace {
    let recent = rec.recent();
    let skip = recent.len().saturating_sub(max_events);
    chrome_trace(&recent[skip..])
}

/// Serialises a trace to `path` (compact JSON — trace files are artefacts
/// for viewers, not for human diffing), creating parent directories.
pub fn write_chrome_trace(path: &str, trace: &ChromeTrace) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create trace output dir");
    }
    let json = serde_json::to_string(trace).expect("serialize chrome trace");
    std::fs::write(p, json).expect("write chrome trace");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                name: "engine.query",
                start_ns: 1_000,
                dur_ns: 250_000,
                args: SpanArgs::new().with("window_len_m", 85),
            },
            SpanRecord {
                name: "engine.context_hit",
                start_ns: 2_000,
                dur_ns: 0,
                args: SpanArgs::new(),
            },
            SpanRecord {
                name: "inbox.validate",
                start_ns: 5_000,
                dur_ns: 3_000,
                args: SpanArgs::new().with("neighbour", 7),
            },
            SpanRecord {
                name: "link.drop",
                start_ns: 9_500,
                dur_ns: 0,
                args: SpanArgs::new(),
            },
        ]
    }

    #[test]
    fn trace_shape_tracks_and_phases() {
        let trace = chrome_trace(&sample_records());
        // One thread_name metadata event per component.
        let meta: Vec<&ChromeTraceEvent> =
            trace.traceEvents.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 3, "engine, inbox, link tracks");
        for m in &meta {
            assert_eq!(m.name, "thread_name");
            assert!(matches!(&m.args, Value::Map(kv) if kv.iter().any(|(k, _)| k == "name")));
        }
        // Spans are complete events, zero-duration records are instants.
        let x: Vec<&ChromeTraceEvent> = trace.span_events().filter(|e| e.ph == "X").collect();
        let i: Vec<&ChromeTraceEvent> = trace.span_events().filter(|e| e.ph == "i").collect();
        assert_eq!(x.len(), 2);
        assert_eq!(i.len(), 2);
        assert!(i.iter().all(|e| e.s == "t" && e.dur == 0.0));
        // Timestamps/durations are microseconds.
        assert_eq!(x[0].ts, 1.0);
        assert_eq!(x[0].dur, 250.0);
        // Same component → same tid; different components differ.
        assert_eq!(x[0].tid, i[0].tid, "engine events share a track");
        assert_ne!(x[0].tid, x[1].tid, "engine and inbox tracks differ");
    }

    #[test]
    fn trace_json_parses_and_roundtrips_span_counts() {
        let records = sample_records();
        let trace = chrome_trace(&records);
        let json = serde_json::to_string(&trace).unwrap();
        assert!(json.starts_with("{"), "object form, not bare array");
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(
            back.span_events().count(),
            records.len(),
            "every record must survive the round-trip"
        );
        // Args survive too.
        let q = back
            .span_events()
            .find(|e| e.name == "engine.query")
            .unwrap();
        assert!(matches!(
            &q.args,
            Value::Map(kv) if kv.iter().any(|(k, v)| k == "window_len_m" && v.as_i64() == Some(85))
        ));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn recorder_tail_export_bounds_events() {
        let rec = SpanRecorder::new(64);
        for _ in 0..10 {
            rec.event("engine.context_hit");
        }
        let full = chrome_trace_tail(&rec, usize::MAX);
        assert_eq!(full.span_events().count(), 10);
        let tail = chrome_trace_tail(&rec, 4);
        assert_eq!(tail.span_events().count(), 4);
    }

    #[test]
    fn component_mapping() {
        assert_eq!(component_of("engine.kernel_scan"), "engine");
        assert_eq!(component_of("inbox.reject.stale"), "inbox");
        assert_eq!(component_of("bare"), "bare");
    }
}

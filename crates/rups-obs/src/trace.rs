//! Chrome trace-event JSON export of a [`SpanRecorder`] ring.
//!
//! [`chrome_trace`] renders recorded spans into the Trace Event Format
//! that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one JSON object with a `traceEvents` array. Spans become
//! `ph: "X"` complete events (microsecond `ts`/`dur`), zero-duration
//! events become `ph: "i"` thread-scoped instants, and every component is
//! mapped onto its own named track (`ph: "M"` `thread_name` metadata)
//! keyed by the span-name prefix before the first `.` — so `engine.*`,
//! `inbox.*`, `link.*` and `codec.*` records land on separate rows of the
//! timeline. [`SpanArgs`] pairs surface as the event's `args` object.

use crate::skew::ClockModel;
use crate::span::{SpanArgs, SpanRecord, SpanRecorder};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// One event of the Chrome Trace Event Format. Only the fields this
/// exporter emits are modelled; viewers ignore whatever they don't need
/// (`dur` on instants, `s` on complete events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceEvent {
    /// Event name (the span name, or `thread_name` for metadata).
    pub name: String,
    /// Category: the component the event belongs to.
    pub cat: String,
    /// Phase: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Start timestamp in microseconds since the recorder's origin.
    pub ts: f64,
    /// Duration in microseconds (0 for instants and metadata).
    pub dur: f64,
    /// Process id; this exporter uses a single process `1`.
    pub pid: u64,
    /// Thread id: one per component track.
    pub tid: u64,
    /// Instant scope (`"t"` thread-scoped for instants, empty otherwise).
    pub s: String,
    /// Structured arguments (`{}` when none).
    pub args: Value,
}

/// A loadable trace: the object form of the format, `{"traceEvents": […]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The events, metadata first, then records oldest-first.
    pub traceEvents: Vec<ChromeTraceEvent>,
}

impl ChromeTrace {
    /// Events that represent recorded spans/instants (phases `X` and `i`),
    /// i.e. everything except per-track metadata.
    pub fn span_events(&self) -> impl Iterator<Item = &ChromeTraceEvent> {
        self.traceEvents.iter().filter(|e| e.ph != "M")
    }
}

/// The track a span name belongs to: the prefix before the first `.`
/// (`"engine.query"` → `"engine"`), or the whole name when undotted.
pub fn component_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders one span argument as a JSON value. Non-negative values map to
/// `UInt` — the variant the JSON parser produces for unsigned literals —
/// so an exported trace compares equal after a parse round-trip.
pub(crate) fn arg_value(v: i64) -> Value {
    match u64::try_from(v) {
        Ok(u) => Value::UInt(u),
        Err(_) => Value::Int(v),
    }
}

fn args_value(args: &SpanArgs) -> Value {
    Value::Map(
        args.iter()
            .map(|(k, v)| (k.to_string(), arg_value(v)))
            .collect(),
    )
}

/// Renders span records (oldest first, as [`SpanRecorder::recent`]
/// returns them) into a loadable [`ChromeTrace`].
pub fn chrome_trace(records: &[SpanRecord]) -> ChromeTrace {
    // Stable track order: components sorted by name, tid assigned 1-based.
    let mut components: Vec<&str> = records.iter().map(|r| component_of(r.name)).collect();
    components.sort_unstable();
    components.dedup();
    let tid_of = |name: &str| -> u64 {
        let c = component_of(name);
        components.iter().position(|&x| x == c).unwrap_or(0) as u64 + 1
    };

    let mut events = Vec::with_capacity(components.len() + records.len());
    for (i, c) in components.iter().enumerate() {
        events.push(ChromeTraceEvent {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0.0,
            dur: 0.0,
            pid: 1,
            tid: i as u64 + 1,
            s: String::new(),
            args: Value::Map(vec![("name".into(), Value::Str((*c).into()))]),
        });
    }
    for r in records {
        let instant = r.dur_ns == 0;
        events.push(ChromeTraceEvent {
            name: r.name.into(),
            cat: component_of(r.name).into(),
            ph: if instant { "i" } else { "X" }.into(),
            ts: r.start_ns as f64 / 1_000.0,
            dur: r.dur_ns as f64 / 1_000.0,
            pid: 1,
            tid: tid_of(r.name),
            s: if instant { "t" } else { "" }.into(),
            args: args_value(&r.args),
        });
    }
    ChromeTrace {
        traceEvents: events,
    }
}

/// One node's contribution to a merged fleet trace: its span ring, the
/// process identity it renders under, and the clock model mapping its
/// local timestamps onto the fleet timebase.
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// Process id in the merged trace — by convention the vehicle id.
    pub pid: u64,
    /// Human-readable process name (e.g. `"vehicle 3"`).
    pub name: String,
    /// This node's clock relative to the fleet timebase; records are
    /// aligned through [`ClockModel::to_fleet_ns`] before export.
    pub clock: ClockModel,
    /// The node's retained span records, oldest first.
    pub records: Vec<SpanRecord>,
}

impl NodeTrace {
    /// A node trace with a synchronised clock.
    pub fn new(pid: u64, name: impl Into<String>, records: Vec<SpanRecord>) -> Self {
        NodeTrace {
            pid,
            name: name.into(),
            clock: ClockModel::IDENTITY,
            records,
        }
    }

    /// The same trace with its clock model set.
    pub fn with_clock(mut self, clock: ClockModel) -> Self {
        self.clock = clock;
        self
    }
}

/// Output bounds for [`merged_chrome_trace_bounded`]: a fleet merge pulls
/// from N rings whose capacity the merging side does not control, so the
/// exporter caps what any one node can contribute — a pathological ring
/// (or a hostile process name) must not be able to produce an unloadable
/// multi-GB trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeLimits {
    /// Newest records kept per node; older ones are dropped.
    pub max_spans_per_node: usize,
    /// Longest process-name string emitted, in characters; longer names
    /// are truncated with a `…` marker.
    pub max_name_chars: usize,
}

impl Default for MergeLimits {
    /// Generous defaults: 64 Ki spans per node (a few MB of JSON each at
    /// most) and 256-character process names.
    fn default() -> Self {
        MergeLimits {
            max_spans_per_node: 65_536,
            max_name_chars: 256,
        }
    }
}

/// Truncates to at most `max_chars` characters (on a char boundary),
/// appending `…` when anything was cut.
fn truncate_chars(s: &str, max_chars: usize) -> String {
    match s.char_indices().nth(max_chars) {
        None => s.to_string(),
        Some((byte, _)) => {
            let mut out = String::with_capacity(byte + 3);
            out.push_str(&s[..byte]);
            out.push('…');
            out
        }
    }
}

/// Renders N per-node span rings into one multi-process Chrome trace:
/// every node becomes its own process (`pid` = vehicle id, named by a
/// `process_name` metadata event), components become per-process threads,
/// and every timestamp is aligned onto the fleet timebase through the
/// node's [`ClockModel`] — so one causal trace (events sharing a `trace`
/// arg minted by [`TraceContext`](crate::TraceContext)) reads as a single
/// left-to-right chain across vehicles. Span events are sorted by aligned
/// timestamp; aligned times before the fleet origin clamp to 0.
///
/// Equivalent to [`merged_chrome_trace_bounded`] with
/// [`MergeLimits::default`].
pub fn merged_chrome_trace(nodes: &[NodeTrace]) -> ChromeTrace {
    merged_chrome_trace_bounded(nodes, MergeLimits::default())
}

/// [`merged_chrome_trace`] under explicit output bounds: each node
/// contributes at most `limits.max_spans_per_node` of its *newest*
/// records, and process names longer than `limits.max_name_chars` are
/// truncated — so output size is `O(nodes × max_spans_per_node)` no
/// matter what the rings hold.
pub fn merged_chrome_trace_bounded(nodes: &[NodeTrace], limits: MergeLimits) -> ChromeTrace {
    let mut meta = Vec::new();
    let mut spans = Vec::new();
    for node in nodes {
        let tail_at = node
            .records
            .len()
            .saturating_sub(limits.max_spans_per_node.max(1));
        let records = &node.records[tail_at..];
        meta.push(ChromeTraceEvent {
            name: "process_name".into(),
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0.0,
            dur: 0.0,
            pid: node.pid,
            tid: 0,
            s: String::new(),
            args: Value::Map(vec![(
                "name".into(),
                Value::Str(truncate_chars(&node.name, limits.max_name_chars.max(1))),
            )]),
        });
        let mut components: Vec<&str> = records.iter().map(|r| component_of(r.name)).collect();
        components.sort_unstable();
        components.dedup();
        for (i, c) in components.iter().enumerate() {
            meta.push(ChromeTraceEvent {
                name: "thread_name".into(),
                cat: "__metadata".into(),
                ph: "M".into(),
                ts: 0.0,
                dur: 0.0,
                pid: node.pid,
                tid: i as u64 + 1,
                s: String::new(),
                args: Value::Map(vec![("name".into(), Value::Str((*c).into()))]),
            });
        }
        for r in records {
            let instant = r.dur_ns == 0;
            let c = component_of(r.name);
            let tid = components.iter().position(|&x| x == c).unwrap_or(0) as u64 + 1;
            spans.push(ChromeTraceEvent {
                name: r.name.into(),
                cat: c.into(),
                ph: if instant { "i" } else { "X" }.into(),
                ts: node.clock.to_fleet_ns(r.start_ns as f64).max(0.0) / 1_000.0,
                dur: r.dur_ns as f64 / 1_000.0,
                pid: node.pid,
                tid,
                s: if instant { "t" } else { "" }.into(),
                args: args_value(&r.args),
            });
        }
    }
    spans.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
    meta.extend(spans);
    ChromeTrace { traceEvents: meta }
}

/// [`chrome_trace`] over the retained ring contents of a recorder,
/// keeping only the newest `max_events` records.
pub fn chrome_trace_tail(rec: &SpanRecorder, max_events: usize) -> ChromeTrace {
    let recent = rec.recent();
    let skip = recent.len().saturating_sub(max_events);
    chrome_trace(&recent[skip..])
}

/// Serialises a trace to `path` (compact JSON — trace files are artefacts
/// for viewers, not for human diffing), creating parent directories.
pub fn write_chrome_trace(path: &str, trace: &ChromeTrace) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create trace output dir");
    }
    let json = serde_json::to_string(trace).expect("serialize chrome trace");
    std::fs::write(p, json).expect("write chrome trace");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                name: "engine.query",
                start_ns: 1_000,
                dur_ns: 250_000,
                args: SpanArgs::new().with("window_len_m", 85),
            },
            SpanRecord {
                name: "engine.context_hit",
                start_ns: 2_000,
                dur_ns: 0,
                args: SpanArgs::new(),
            },
            SpanRecord {
                name: "inbox.validate",
                start_ns: 5_000,
                dur_ns: 3_000,
                args: SpanArgs::new().with("neighbour", 7),
            },
            SpanRecord {
                name: "link.drop",
                start_ns: 9_500,
                dur_ns: 0,
                args: SpanArgs::new(),
            },
        ]
    }

    #[test]
    fn trace_shape_tracks_and_phases() {
        let trace = chrome_trace(&sample_records());
        // One thread_name metadata event per component.
        let meta: Vec<&ChromeTraceEvent> =
            trace.traceEvents.iter().filter(|e| e.ph == "M").collect();
        assert_eq!(meta.len(), 3, "engine, inbox, link tracks");
        for m in &meta {
            assert_eq!(m.name, "thread_name");
            assert!(matches!(&m.args, Value::Map(kv) if kv.iter().any(|(k, _)| k == "name")));
        }
        // Spans are complete events, zero-duration records are instants.
        let x: Vec<&ChromeTraceEvent> = trace.span_events().filter(|e| e.ph == "X").collect();
        let i: Vec<&ChromeTraceEvent> = trace.span_events().filter(|e| e.ph == "i").collect();
        assert_eq!(x.len(), 2);
        assert_eq!(i.len(), 2);
        assert!(i.iter().all(|e| e.s == "t" && e.dur == 0.0));
        // Timestamps/durations are microseconds.
        assert_eq!(x[0].ts, 1.0);
        assert_eq!(x[0].dur, 250.0);
        // Same component → same tid; different components differ.
        assert_eq!(x[0].tid, i[0].tid, "engine events share a track");
        assert_ne!(x[0].tid, x[1].tid, "engine and inbox tracks differ");
    }

    #[test]
    fn trace_json_parses_and_roundtrips_span_counts() {
        let records = sample_records();
        let trace = chrome_trace(&records);
        let json = serde_json::to_string(&trace).unwrap();
        assert!(json.starts_with("{"), "object form, not bare array");
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(
            back.span_events().count(),
            records.len(),
            "every record must survive the round-trip"
        );
        // Args survive too.
        let q = back
            .span_events()
            .find(|e| e.name == "engine.query")
            .unwrap();
        assert!(matches!(
            &q.args,
            Value::Map(kv) if kv.iter().any(|(k, v)| k == "window_len_m" && v.as_i64() == Some(85))
        ));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn recorder_tail_export_bounds_events() {
        let rec = SpanRecorder::new(64);
        for _ in 0..10 {
            rec.event("engine.context_hit");
        }
        let full = chrome_trace_tail(&rec, usize::MAX);
        assert_eq!(full.span_events().count(), 10);
        let tail = chrome_trace_tail(&rec, 4);
        assert_eq!(tail.span_events().count(), 4);
    }

    #[test]
    fn merged_trace_aligns_clocks_and_separates_processes() {
        // Vehicle 3's clock runs 1 ms ahead of fleet time; vehicle 5 is
        // synchronised. The same fleet-time instant must export at the
        // same `ts` for both after alignment.
        let skewed = ClockModel {
            offset_ns: 1_000_000.0,
            drift_ppm: 0.0,
        };
        let nodes = vec![
            NodeTrace::new(
                3,
                "vehicle 3",
                vec![SpanRecord {
                    name: "v2v.beacon",
                    start_ns: 1_000_000 + 2_000, // fleet time 2 µs, local clock
                    dur_ns: 500,
                    args: SpanArgs::new().with("trace", 77),
                }],
            )
            .with_clock(skewed),
            NodeTrace::new(
                5,
                "vehicle 5",
                vec![
                    SpanRecord {
                        name: "inbox.validate",
                        start_ns: 2_000, // same fleet instant, true clock
                        dur_ns: 300,
                        args: SpanArgs::new().with("trace", 77),
                    },
                    SpanRecord {
                        name: "engine.query",
                        start_ns: 9_000,
                        dur_ns: 4_000,
                        args: SpanArgs::new().with("trace", 77),
                    },
                ],
            ),
        ];
        let trace = merged_chrome_trace(&nodes);
        // Process metadata: one process_name per node, pids are vehicle
        // ids.
        let procs: Vec<&ChromeTraceEvent> = trace
            .traceEvents
            .iter()
            .filter(|e| e.name == "process_name")
            .collect();
        assert_eq!(procs.len(), 2);
        let pids: Vec<u64> = procs.iter().map(|e| e.pid).collect();
        assert_eq!(pids, vec![3, 5]);
        // Thread metadata stays per-process.
        assert!(trace
            .traceEvents
            .iter()
            .filter(|e| e.name == "thread_name")
            .all(|e| e.pid == 3 || e.pid == 5));
        // Alignment: the skewed beacon and the true-clock validation land
        // on the same exported timestamp.
        let beacon = trace.span_events().find(|e| e.name == "v2v.beacon").unwrap();
        let validate = trace
            .span_events()
            .find(|e| e.name == "inbox.validate")
            .unwrap();
        assert!(
            (beacon.ts - validate.ts).abs() < 1e-9,
            "beacon {} vs validate {}",
            beacon.ts,
            validate.ts
        );
        assert_eq!(beacon.pid, 3);
        assert_eq!(validate.pid, 5);
        // Span events are globally sorted by aligned time.
        let ts: Vec<f64> = trace.span_events().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        // The causal trace arg survives on every hop.
        assert!(trace
            .span_events()
            .all(|e| matches!(&e.args, Value::Map(kv) if kv.iter().any(|(k, _)| k == "trace"))));
        // And the whole thing still parses as trace-event JSON.
        let json = serde_json::to_string(&trace).unwrap();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn merged_trace_clamps_pre_origin_times() {
        // A badly-estimated clock could map a record before fleet zero;
        // the export clamps instead of emitting negative timestamps.
        let n = NodeTrace::new(
            1,
            "v1",
            vec![SpanRecord {
                name: "engine.query",
                start_ns: 10,
                dur_ns: 5,
                args: SpanArgs::new(),
            }],
        )
        .with_clock(ClockModel {
            offset_ns: 1e9,
            drift_ppm: 0.0,
        });
        let trace = merged_chrome_trace(&[n]);
        let e = trace.span_events().next().unwrap();
        assert_eq!(e.ts, 0.0);
    }

    #[test]
    fn bounded_merge_caps_per_node_spans_and_truncates_names() {
        // A pathological node: a huge ring and a pathological name.
        let records: Vec<SpanRecord> = (0..10_000)
            .map(|i| SpanRecord {
                name: "engine.query",
                start_ns: i,
                dur_ns: 1,
                args: SpanArgs::new(),
            })
            .collect();
        let long_name: String = "véhicule ".repeat(200); // multi-byte chars
        let nodes = vec![
            NodeTrace::new(1, long_name.clone(), records),
            NodeTrace::new(
                2,
                "v2",
                vec![SpanRecord {
                    name: "inbox.validate",
                    start_ns: 99_999,
                    dur_ns: 1,
                    args: SpanArgs::new(),
                }],
            ),
        ];
        let limits = MergeLimits {
            max_spans_per_node: 100,
            max_name_chars: 16,
        };
        let trace = merged_chrome_trace_bounded(&nodes, limits);
        let node1_spans = trace.span_events().filter(|e| e.pid == 1).count();
        assert_eq!(node1_spans, 100, "per-node cap holds");
        // The cap keeps the NEWEST records.
        let max_ts = trace
            .span_events()
            .filter(|e| e.pid == 1)
            .map(|e| e.ts)
            .fold(0.0f64, f64::max);
        assert!((max_ts - 9_999.0 / 1_000.0).abs() < 1e-9, "{max_ts}");
        // The other node is untouched.
        assert_eq!(trace.span_events().filter(|e| e.pid == 2).count(), 1);
        // The process name is truncated on a char boundary with a marker.
        let proc1 = trace
            .traceEvents
            .iter()
            .find(|e| e.name == "process_name" && e.pid == 1)
            .unwrap();
        let Value::Map(kv) = &proc1.args else {
            panic!("process_name args must be a map");
        };
        let name = kv
            .iter()
            .find(|(k, _)| k == "name")
            .and_then(|(_, v)| v.as_str())
            .unwrap();
        assert_eq!(name.chars().count(), 17, "16 chars + ellipsis: {name:?}");
        assert!(name.ends_with('…'));
        assert!(long_name.starts_with(name.trim_end_matches('…')));
        // The default path keeps small traces intact.
        let small = merged_chrome_trace(&nodes[1..]);
        assert_eq!(small.span_events().count(), 1);
    }

    #[test]
    fn component_mapping() {
        assert_eq!(component_of("engine.kernel_scan"), "engine");
        assert_eq!(component_of("inbox.reject.stale"), "inbox");
        assert_eq!(component_of("bare"), "bare");
    }
}

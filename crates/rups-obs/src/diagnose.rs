//! Automated diagnosis: from a fleet-level [`Alarm`] to the node and
//! pipeline stage that caused it.
//!
//! An alarm says *something* degraded *somewhere*; localisation is the
//! cross-node correlation step a human would otherwise do by hand. Given
//! the per-node window deltas of the firing window and of a healthy
//! baseline window, [`diagnose`] scores every `(node, stage)` pair of the
//! beacon → link → inbox → engine → fuse pipeline on how far that node's
//! stage moved from its own baseline, picks the worst pair, and pulls
//! exemplar traces (by [`TraceContext`](crate::TraceContext) id) from the
//! guilty node's span ring so the report carries evidence, not just a
//! verdict. The caller may attach the matching flight-recorder dump.
//!
//! Stage evidence, all normalised into `[0, 1]`:
//!
//! | stage  | signal                                                        |
//! |--------|---------------------------------------------------------------|
//! | beacon | jump in the node's `rups_node_clock_offset_ns` gauge          |
//! | link   | collapse of the node's inbox *arrival* count                  |
//! | inbox  | rise of the node's validation-rejection ratio                 |
//! | engine | inflation of the node's `rups_core_engine_query_ns` p99       |
//! | fuse   | rise of the node's fuse edge-rejections per solve             |

use crate::detect::Alarm;
use crate::flight::{FlightDump, SpanDump};
use crate::registry::MetricsSnapshot;
use crate::span::SpanRecord;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Gauge a fleet harness sets per node to its estimated clock offset
/// against the fleet timebase, nanoseconds. A jump in it localises a
/// clock fault to the node's beacon stage (its broadcasts carry the bad
/// timestamps).
pub const CLOCK_OFFSET_GAUGE: &str = "rups_node_clock_offset_ns";

/// Clock-offset jump (ns) scoring as full evidence: half a second.
const CLOCK_JUMP_FULL_NS: f64 = 5e8;
/// Engine p99 inflation factor scoring as full evidence (10×).
const ENGINE_SLOWDOWN_FULL: f64 = 9.0;
/// Fuse edge-rejections per solve scoring as full evidence.
const FUSE_REJECTS_FULL: f64 = 4.0;
/// Exemplar traces attached to a report.
const MAX_EXEMPLAR_TRACES: usize = 3;
/// Exemplar spans attached to a report.
const MAX_EXEMPLAR_SPANS: usize = 64;

/// The RUPS pipeline stages a fault can be localised to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Periodic broadcast of the node's own context (clock faults land
    /// here: the node stamps its beacons wrong).
    Beacon,
    /// The V2V channel into the node (loss, corruption, truncation).
    Link,
    /// Beacon validation and admission on the receiver.
    Inbox,
    /// The SYN-search fix engine.
    Engine,
    /// Cooperative fix-graph fusion.
    Fuse,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Beacon,
        Stage::Link,
        Stage::Inbox,
        Stage::Engine,
        Stage::Fuse,
    ];
}

/// One node's per-window metric snapshots, as [`diagnose`] consumes them.
#[derive(Debug, Clone)]
pub struct NodeWindow {
    /// Vehicle/node id.
    pub node_id: u64,
    /// The node's window delta from a healthy reference window.
    pub baseline: MetricsSnapshot,
    /// The node's window delta from the window the alarm fired on.
    pub firing: MetricsSnapshot,
}

/// Evidence strength for one `(node, stage)` pair, in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageScore {
    /// Vehicle/node id.
    pub node_id: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Normalised deviation from the node's own baseline.
    pub score: f64,
}

/// One exemplar span pulled from a node's ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarSpan {
    /// Node whose ring held the span.
    pub node_id: u64,
    /// The span, in flight-dump form (owned strings, JSON args).
    pub span: SpanDump,
}

/// The structured output of [`diagnose`]: a localised, evidence-carrying
/// account of one alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// The alarm being explained.
    pub alarm: Alarm,
    /// The localisation verdict: the node whose stage moved furthest.
    pub worst_node: u64,
    /// The pipeline stage the fault is localised to.
    pub worst_stage: Stage,
    /// The winning score (0 when no evidence scored at all).
    pub worst_score: f64,
    /// Every scored `(node, stage)` pair, strongest first.
    pub scores: Vec<StageScore>,
    /// Trace ids implicating the worst node, longest spans first.
    pub exemplar_traces: Vec<u64>,
    /// Spans of those traces across *all* nodes (the cross-node view of
    /// the exemplar traces), chronological per node.
    pub exemplar_spans: Vec<ExemplarSpan>,
    /// The worst node's flight-recorder dump, when the caller attached
    /// one via [`DiagnosisReport::with_flight`].
    pub flight: Option<FlightDump>,
}

impl DiagnosisReport {
    /// Attaches the worst node's flight-recorder dump.
    pub fn with_flight(mut self, dump: FlightDump) -> Self {
        self.flight = Some(dump);
        self
    }
}

fn counter_sum(snap: &MetricsSnapshot, names: &[&str]) -> u64 {
    names
        .iter()
        .filter_map(|n| snap.counter(n))
        .fold(0u64, u64::saturating_add)
}

const INBOX_REJECTS: [&str; 4] = [
    "rups_core_inbox_rejected_malformed",
    "rups_core_inbox_rejected_channel_mismatch",
    "rups_core_inbox_rejected_undersized",
    "rups_core_inbox_rejected_stale",
];

const INBOX_ALL: [&str; 6] = [
    "rups_core_inbox_rejected_malformed",
    "rups_core_inbox_rejected_channel_mismatch",
    "rups_core_inbox_rejected_undersized",
    "rups_core_inbox_rejected_stale",
    "rups_core_inbox_accepted",
    "rups_core_inbox_ignored_outdated",
];

/// Scores one `(node, stage)` pair; `None` when the stage's metrics are
/// absent on this node (it then simply does not rank).
fn stage_score(stage: Stage, w: &NodeWindow) -> Option<f64> {
    let score = match stage {
        Stage::Beacon => {
            let before = w.baseline.gauge(CLOCK_OFFSET_GAUGE)?;
            let after = w.firing.gauge(CLOCK_OFFSET_GAUGE)?;
            if !before.is_finite() || !after.is_finite() {
                return None;
            }
            (after - before).abs() / CLOCK_JUMP_FULL_NS
        }
        Stage::Link => {
            let before = counter_sum(&w.baseline, &INBOX_ALL);
            let after = counter_sum(&w.firing, &INBOX_ALL);
            if before == 0 {
                return None;
            }
            1.0 - after as f64 / before as f64
        }
        Stage::Inbox => {
            let ratio = |s: &MetricsSnapshot| {
                let all = counter_sum(s, &INBOX_ALL);
                (all > 0).then(|| counter_sum(s, &INBOX_REJECTS) as f64 / all as f64)
            };
            ratio(&w.firing)? - ratio(&w.baseline)?
        }
        Stage::Engine => {
            let before = w.baseline.histogram("rups_core_engine_query_ns")?;
            let after = w.firing.histogram("rups_core_engine_query_ns")?;
            if before.count == 0 || after.count == 0 || before.p99 <= 0.0 {
                return None;
            }
            (after.p99 / before.p99 - 1.0) / ENGINE_SLOWDOWN_FULL
        }
        Stage::Fuse => {
            let per_solve = |s: &MetricsSnapshot| {
                let solves = s.counter("rups_fuse_solves").unwrap_or(0);
                (solves > 0)
                    .then(|| s.counter("rups_fuse_edges_rejected").unwrap_or(0) as f64 / solves as f64)
            };
            (per_solve(&w.firing)? - per_solve(&w.baseline)?) / FUSE_REJECTS_FULL
        }
    };
    Some(score.clamp(0.0, 1.0))
}

fn span_dump(r: &SpanRecord) -> SpanDump {
    SpanDump {
        name: r.name.to_string(),
        start_ns: r.start_ns,
        dur_ns: r.dur_ns,
        args: Value::Map(
            r.args
                .iter()
                .map(|(k, v)| (k.to_string(), crate::trace::arg_value(v)))
                .collect(),
        ),
    }
}

/// Localises `alarm` to the worst `(node, stage)` pair and assembles a
/// [`DiagnosisReport`]. `nodes` carries each node's baseline and firing
/// window deltas; `spans` carries `(node_id, ring contents)` pairs used to
/// pull exemplar traces for the guilty node. Returns `None` only when
/// `nodes` is empty.
pub fn diagnose(
    alarm: &Alarm,
    nodes: &[NodeWindow],
    spans: &[(u64, Vec<SpanRecord>)],
) -> Option<DiagnosisReport> {
    if nodes.is_empty() {
        return None;
    }
    let mut scores: Vec<StageScore> = Vec::new();
    for w in nodes {
        for stage in Stage::ALL {
            if let Some(score) = stage_score(stage, w) {
                scores.push(StageScore {
                    node_id: w.node_id,
                    stage,
                    score,
                });
            }
        }
    }
    scores.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (worst_node, worst_stage, worst_score) = scores
        .first()
        .map(|s| (s.node_id, s.stage, s.score))
        .unwrap_or((nodes[0].node_id, Stage::Link, 0.0));

    // Exemplar traces: the worst node's longest traced spans.
    let mut traced: Vec<(u64, u64)> = spans
        .iter()
        .filter(|(id, _)| *id == worst_node)
        .flat_map(|(_, recs)| recs.iter())
        .filter_map(|r| {
            r.args
                .get(crate::context::TRACE_ARG)
                .map(|t| (t as u64, r.dur_ns))
        })
        .collect();
    traced.sort_by_key(|&(_, dur)| std::cmp::Reverse(dur));
    let mut exemplar_traces: Vec<u64> = Vec::new();
    for (t, _) in traced {
        if !exemplar_traces.contains(&t) {
            exemplar_traces.push(t);
            if exemplar_traces.len() >= MAX_EXEMPLAR_TRACES {
                break;
            }
        }
    }
    let mut exemplar_spans: Vec<ExemplarSpan> = Vec::new();
    'outer: for (node_id, recs) in spans {
        for r in recs {
            let Some(t) = r.args.get(crate::context::TRACE_ARG) else {
                continue;
            };
            if exemplar_traces.contains(&(t as u64)) {
                exemplar_spans.push(ExemplarSpan {
                    node_id: *node_id,
                    span: span_dump(r),
                });
                if exemplar_spans.len() >= MAX_EXEMPLAR_SPANS {
                    break 'outer;
                }
            }
        }
    }

    Some(DiagnosisReport {
        alarm: alarm.clone(),
        worst_node,
        worst_stage,
        worst_score,
        scores,
        exemplar_traces,
        exemplar_spans,
        flight: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectorKind;
    use crate::registry::Registry;
    use crate::span::SpanArgs;

    fn alarm() -> Alarm {
        Alarm {
            detector: "fix_availability".into(),
            kind: DetectorKind::EwmaZScore,
            t_s: 100.0,
            window_index: 5,
            value: 0.2,
            baseline: 0.9,
            score: 9.0,
            threshold: 6.0,
        }
    }

    /// A healthy node window: steady arrivals, low rejections, ~1 ms p99.
    fn healthy(node_id: u64) -> NodeWindow {
        let mk = || {
            let reg = Registry::new();
            reg.counter("rups_core_inbox_accepted").add(95);
            reg.counter("rups_core_inbox_rejected_stale").add(5);
            let h = reg.histogram("rups_core_engine_query_ns");
            for _ in 0..16 {
                h.record(1_000_000);
            }
            reg.counter("rups_fuse_solves").add(10);
            reg.counter("rups_fuse_edges_rejected").add(1);
            reg.gauge(CLOCK_OFFSET_GAUGE).set(1_000.0);
            reg.snapshot()
        };
        NodeWindow {
            node_id,
            baseline: mk(),
            firing: mk(),
        }
    }

    #[test]
    fn arrival_collapse_localises_to_the_link_stage() {
        let mut nodes = vec![healthy(1), healthy(2), healthy(3)];
        // Node 2's arrivals collapse in the firing window.
        let reg = Registry::new();
        reg.counter("rups_core_inbox_accepted").add(4);
        reg.counter("rups_core_inbox_rejected_stale").add(1);
        let h = reg.histogram("rups_core_engine_query_ns");
        for _ in 0..16 {
            h.record(1_000_000);
        }
        reg.gauge(CLOCK_OFFSET_GAUGE).set(1_000.0);
        nodes[1].firing = reg.snapshot();
        let report = diagnose(&alarm(), &nodes, &[]).unwrap();
        assert_eq!(report.worst_node, 2);
        assert_eq!(report.worst_stage, Stage::Link);
        assert!(report.worst_score > 0.9, "{}", report.worst_score);
        assert!(report.scores.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn clock_jump_localises_to_the_beacon_stage() {
        let mut nodes = vec![healthy(1), healthy(2)];
        let reg = Registry::new();
        reg.counter("rups_core_inbox_accepted").add(95);
        reg.counter("rups_core_inbox_rejected_stale").add(5);
        let h = reg.histogram("rups_core_engine_query_ns");
        for _ in 0..16 {
            h.record(1_000_000);
        }
        reg.gauge(CLOCK_OFFSET_GAUGE).set(6e8); // ~0.6 s jump
        nodes[0].firing = reg.snapshot();
        let report = diagnose(&alarm(), &nodes, &[]).unwrap();
        assert_eq!(report.worst_node, 1);
        assert_eq!(report.worst_stage, Stage::Beacon);
        assert_eq!(report.worst_score, 1.0, "jump past full evidence clamps");
    }

    #[test]
    fn engine_slowdown_localises_with_exemplar_traces() {
        let mut nodes = vec![healthy(1), healthy(2)];
        let reg = Registry::new();
        reg.counter("rups_core_inbox_accepted").add(95);
        reg.counter("rups_core_inbox_rejected_stale").add(5);
        let h = reg.histogram("rups_core_engine_query_ns");
        for _ in 0..16 {
            h.record(50_000_000); // 50× the healthy 1 ms
        }
        reg.gauge(CLOCK_OFFSET_GAUGE).set(1_000.0);
        nodes[1].firing = reg.snapshot();

        let slow = SpanRecord {
            name: "engine.query",
            start_ns: 10,
            dur_ns: 50_000_000,
            args: SpanArgs::new().with(crate::context::TRACE_ARG, 77),
        };
        let remote = SpanRecord {
            name: "v2v.beacon",
            start_ns: 5,
            dur_ns: 1_000,
            args: SpanArgs::new().with(crate::context::TRACE_ARG, 77),
        };
        let unrelated = SpanRecord {
            name: "engine.query",
            start_ns: 20,
            dur_ns: 500,
            args: SpanArgs::new(),
        };
        let report = diagnose(
            &alarm(),
            &nodes,
            &[(1, vec![remote]), (2, vec![slow, unrelated])],
        )
        .unwrap();
        assert_eq!(report.worst_node, 2);
        assert_eq!(report.worst_stage, Stage::Engine);
        assert_eq!(report.exemplar_traces, vec![77]);
        // The cross-node view pulls trace 77's spans from both rings.
        let nodes_seen: Vec<u64> = report.exemplar_spans.iter().map(|e| e.node_id).collect();
        assert!(nodes_seen.contains(&1) && nodes_seen.contains(&2));
        assert!(report
            .exemplar_spans
            .iter()
            .all(|e| e.span.name != "engine.query" || e.span.dur_ns == 50_000_000));
    }

    #[test]
    fn healthy_fleet_scores_near_zero_and_empty_fleet_declines() {
        let nodes = vec![healthy(1), healthy(2)];
        let report = diagnose(&alarm(), &nodes, &[]).unwrap();
        assert!(
            report.worst_score < 0.05,
            "healthy fleet scored {}",
            report.worst_score
        );
        assert!(diagnose(&alarm(), &[], &[]).is_none());
    }

    #[test]
    fn report_round_trips_through_json() {
        let nodes = vec![healthy(1)];
        let report = diagnose(&alarm(), &nodes, &[]).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: DiagnosisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

//! Declarative service-level objectives evaluated from telemetry alone.
//!
//! An [`SloSpec`] names one objective over the fleet's metrics — a latency
//! quantile ceiling, a success-ratio floor, a failure-ratio ceiling, or an
//! error-budget burn-rate ceiling — and [`evaluate_slos`] checks a whole
//! spec set against a cumulative [`MetricsSnapshot`] plus the per-window
//! deltas of the run's timeline, producing a machine-readable
//! [`SloVerdict`]. Nothing here looks at ground truth: a soak harness or
//! CI gate passes or fails purely on what the registries observed, which
//! is exactly the discipline a production fleet would run under.
//!
//! Burn rate follows the SRE convention: with availability objective `o`,
//! a window whose failure ratio is `f` burns budget at rate `f / (1 - o)`
//! (rate 1 = exactly exhausting the budget over the period). The
//! [`BurnRateMax`](SloKind::BurnRateMax) objective caps the *worst* armed
//! window, catching short bursts a run-wide average would hide.

use crate::registry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// The objective kinds. Which [`SloSpec`] fields each kind reads is
/// documented per variant; unused fields stay empty/zero (the spec is a
/// flat struct, like [`TriggerRule`](crate::TriggerRule), so it
/// serialises through the declarative config channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloKind {
    /// The cumulative p99 of the histogram named by `metric` must stay at
    /// or below `threshold` (ns).
    P99MaxNs,
    /// `sum(num)/sum(den)` over cumulative counters must reach
    /// `threshold` (availability-style floors; `num` = good events).
    RatioMin,
    /// `sum(num)/sum(den)` over cumulative counters must stay at or below
    /// `threshold` (rejection-rate-style ceilings; `num` = bad events).
    RatioMax,
    /// Per-window error-budget burn rate (`num` = bad, `den` = total,
    /// budget from `objective`) must stay at or below `threshold` in
    /// every armed window.
    BurnRateMax,
}

/// A named objective plus its arming gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Objective name, stamped on the report.
    pub name: String,
    /// The predicate kind.
    pub kind: SloKind,
    /// Histogram name ([`P99MaxNs`](SloKind::P99MaxNs) only).
    pub metric: String,
    /// Numerator counter names (ratio/burn kinds).
    pub num: Vec<String>,
    /// Denominator counter names (ratio/burn kinds).
    pub den: Vec<String>,
    /// The threshold the observed value is compared against (ns, ratio,
    /// or burn rate, by kind).
    pub threshold: f64,
    /// The availability objective a burn-rate budget derives from, in
    /// (0, 1) ([`BurnRateMax`](SloKind::BurnRateMax) only).
    pub objective: f64,
    /// Minimum events (histogram count, ratio denominator, or per-window
    /// total) before the objective arms; under-armed objectives pass
    /// vacuously so short smoke runs don't fail on noise.
    pub min_events: u64,
}

impl SloSpec {
    /// A p99 latency ceiling on `metric`.
    pub fn p99_max_ns(name: &str, metric: &str, max_ns: f64, min_events: u64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::P99MaxNs,
            metric: metric.to_string(),
            num: Vec::new(),
            den: Vec::new(),
            threshold: max_ns,
            objective: 0.0,
            min_events,
        }
    }

    /// A ratio floor (`sum(num)/sum(den) ≥ min`).
    pub fn ratio_min(name: &str, num: Vec<String>, den: Vec<String>, min: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::RatioMin,
            metric: String::new(),
            num,
            den,
            threshold: min,
            objective: 0.0,
            min_events: 16,
        }
    }

    /// A ratio ceiling (`sum(num)/sum(den) ≤ max`).
    pub fn ratio_max(name: &str, num: Vec<String>, den: Vec<String>, max: f64) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::RatioMax,
            metric: String::new(),
            num,
            den,
            threshold: max,
            objective: 0.0,
            min_events: 16,
        }
    }

    /// A per-window burn-rate ceiling against an availability objective.
    pub fn burn_rate_max(
        name: &str,
        bad: Vec<String>,
        total: Vec<String>,
        objective: f64,
        max_burn: f64,
    ) -> Self {
        SloSpec {
            name: name.to_string(),
            kind: SloKind::BurnRateMax,
            metric: String::new(),
            num: bad,
            den: total,
            threshold: max_burn,
            objective,
            min_events: 8,
        }
    }

    /// The same spec with a different arming gate.
    pub fn with_min_events(mut self, min_events: u64) -> Self {
        self.min_events = min_events;
        self
    }
}

/// The outcome of one spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Spec name.
    pub name: String,
    /// Whether the objective held (true when never armed).
    pub pass: bool,
    /// The observed value compared against the threshold (0 when never
    /// armed).
    pub observed: f64,
    /// The threshold from the spec.
    pub threshold: f64,
    /// Events backing the observation (0 when never armed).
    pub events: u64,
    /// Whether the objective saw enough events to arm.
    pub armed: bool,
}

/// The outcome of a whole spec set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// True when every report passed.
    pub pass: bool,
    /// One report per spec, in spec order.
    pub reports: Vec<SloReport>,
}

fn counter_sum(snap: &MetricsSnapshot, names: &[String]) -> u64 {
    names.iter().map(|n| snap.counter(n).unwrap_or(0)).sum()
}

/// Evaluates `specs` against the run's cumulative snapshot and its
/// per-window deltas (`windows` may be empty; burn-rate objectives then
/// never arm).
pub fn evaluate_slos(
    specs: &[SloSpec],
    cumulative: &MetricsSnapshot,
    windows: &[MetricsSnapshot],
) -> SloVerdict {
    let reports: Vec<SloReport> = specs
        .iter()
        .map(|spec| {
            // `upper_is_bad`: whether the observation breaches by exceeding
            // the threshold (ceilings) rather than undershooting (floors).
            let (observed, events, upper_is_bad) = match spec.kind {
                SloKind::P99MaxNs => {
                    let (p99, count) = cumulative
                        .histogram(&spec.metric)
                        .map(|h| (h.p99, h.count))
                        .unwrap_or((0.0, 0));
                    (p99, count, true)
                }
                SloKind::RatioMin | SloKind::RatioMax => {
                    let d = counter_sum(cumulative, &spec.den);
                    let v = if d == 0 {
                        0.0
                    } else {
                        counter_sum(cumulative, &spec.num) as f64 / d as f64
                    };
                    (v, d, spec.kind == SloKind::RatioMax)
                }
                SloKind::BurnRateMax => {
                    let budget = (1.0 - spec.objective).max(1e-9);
                    let mut worst = 0.0f64;
                    let mut armed_events = 0u64;
                    for w in windows {
                        let t = counter_sum(w, &spec.den);
                        if t < spec.min_events.max(1) {
                            continue;
                        }
                        let burn = (counter_sum(w, &spec.num) as f64 / t as f64) / budget;
                        if burn > worst {
                            worst = burn;
                        }
                        armed_events += t;
                    }
                    (worst, armed_events, true)
                }
            };
            let armed = events >= spec.min_events && events > 0;
            let pass = !armed
                || if upper_is_bad {
                    observed <= spec.threshold
                } else {
                    observed >= spec.threshold
                };
            SloReport {
                name: spec.name.clone(),
                pass,
                observed: if armed { observed } else { 0.0 },
                threshold: spec.threshold,
                events: if armed { events } else { 0 },
                armed,
            }
        })
        .collect();
    SloVerdict {
        pass: reports.iter().all(|r| r.pass),
        reports,
    }
}

/// The RUPS fleet's default objectives: engine-query p99 under
/// `p99_max_ns`, fix availability (graded fixes over all assessed) of at
/// least 85 %, inbox validation-rejection rate at most 25 %, and no
/// window burning error budget faster than 6× against an 85 % objective.
pub fn default_slos(p99_max_ns: f64) -> Vec<SloSpec> {
    let grades = vec![
        "rups_core_quality_grade_high".to_string(),
        "rups_core_quality_grade_medium".to_string(),
        "rups_core_quality_grade_low".to_string(),
    ];
    let mut assessed = grades.clone();
    assessed.push("rups_core_quality_rejected".to_string());
    let inbox_rejects = vec![
        "rups_core_inbox_rejected_malformed".to_string(),
        "rups_core_inbox_rejected_channel_mismatch".to_string(),
        "rups_core_inbox_rejected_undersized".to_string(),
        "rups_core_inbox_rejected_stale".to_string(),
    ];
    let mut inbox_all = inbox_rejects.clone();
    inbox_all.push("rups_core_inbox_accepted".to_string());
    inbox_all.push("rups_core_inbox_ignored_outdated".to_string());
    vec![
        SloSpec::p99_max_ns(
            "fix_p99_latency",
            "rups_core_engine_query_ns",
            p99_max_ns,
            16,
        ),
        SloSpec::ratio_min("fix_availability", grades.clone(), assessed.clone(), 0.85),
        SloSpec::ratio_max("validation_rejection_rate", inbox_rejects, inbox_all, 0.25),
        SloSpec::burn_rate_max(
            "error_budget_burn",
            vec!["rups_core_quality_rejected".into()],
            assessed,
            0.85,
            6.0,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn snap(pairs: &[(&str, u64)], latencies: &[u64]) -> MetricsSnapshot {
        let reg = Registry::new();
        for (n, v) in pairs {
            reg.counter(n).add(*v);
        }
        let h = reg.histogram("rups_core_engine_query_ns");
        for &v in latencies {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn p99_objective_passes_and_fails_on_the_tail() {
        let fast = snap(&[], &[1_000; 32]);
        let spec = vec![SloSpec::p99_max_ns(
            "lat",
            "rups_core_engine_query_ns",
            10_000.0,
            16,
        )];
        let v = evaluate_slos(&spec, &fast, &[]);
        assert!(v.pass, "{:?}", v.reports);
        assert!(v.reports[0].armed);
        let mut slow_samples = vec![1_000u64; 31];
        slow_samples.push(50_000_000);
        let slow = snap(&[], &slow_samples);
        let v = evaluate_slos(&spec, &slow, &[]);
        assert!(!v.pass);
        assert!(v.reports[0].observed > 10_000.0);
    }

    #[test]
    fn ratio_floors_and_ceilings() {
        let good = snap(&[("ok", 90), ("bad", 10)], &[]);
        let specs = vec![
            SloSpec::ratio_min(
                "avail",
                vec!["ok".into()],
                vec!["ok".into(), "bad".into()],
                0.85,
            )
            .with_min_events(10),
            SloSpec::ratio_max(
                "rejects",
                vec!["bad".into()],
                vec!["ok".into(), "bad".into()],
                0.15,
            )
            .with_min_events(10),
        ];
        let v = evaluate_slos(&specs, &good, &[]);
        assert!(v.pass, "{:?}", v.reports);
        let degraded = snap(&[("ok", 60), ("bad", 40)], &[]);
        let v = evaluate_slos(&specs, &degraded, &[]);
        assert!(!v.pass);
        assert!(!v.reports[0].pass, "availability floor broken");
        assert!(!v.reports[1].pass, "rejection ceiling broken");
    }

    #[test]
    fn under_armed_objectives_pass_vacuously() {
        let tiny = snap(&[("ok", 2), ("bad", 1)], &[500]);
        let specs = vec![
            // Would fail if armed: 2/3 < 0.99.
            SloSpec::ratio_min(
                "avail",
                vec!["ok".into()],
                vec!["ok".into(), "bad".into()],
                0.99,
            ),
            // Would fail if armed: one 500 ns sample vs a 1 ns ceiling.
            SloSpec::p99_max_ns("lat", "rups_core_engine_query_ns", 1.0, 16),
            SloSpec::p99_max_ns("missing_hist", "never_registered_ns", 1.0, 1),
        ];
        let v = evaluate_slos(&specs, &tiny, &[]);
        assert!(v.pass, "{:?}", v.reports);
        assert!(v.reports.iter().all(|r| !r.armed));
        assert!(v.reports.iter().all(|r| r.events == 0));
    }

    #[test]
    fn burn_rate_caps_the_worst_window() {
        // Objective 0.9 → budget 0.1. Window A burns at 0.5 (5% bad),
        // window B at 4.0 (40% bad). Ceiling 3.0 must fail on B alone.
        let w_a = snap(&[("bad", 5), ("all", 100)], &[]);
        let w_b = snap(&[("bad", 40), ("all", 100)], &[]);
        let spec = |max_burn: f64| {
            vec![SloSpec::burn_rate_max(
                "burn",
                vec!["bad".into()],
                vec!["all".into()],
                0.9,
                max_burn,
            )
            .with_min_events(50)]
        };
        let cum = snap(&[], &[]);
        let v = evaluate_slos(&spec(3.0), &cum, &[w_a.clone(), w_b.clone()]);
        assert!(!v.pass);
        assert!((v.reports[0].observed - 4.0).abs() < 1e-9);
        let v = evaluate_slos(&spec(5.0), &cum, &[w_a.clone(), w_b.clone()]);
        assert!(v.pass, "{:?}", v.reports);
        // Small windows below min_events never arm the objective.
        let w_small = snap(&[("bad", 10), ("all", 10)], &[]);
        let v = evaluate_slos(&spec(0.1), &cum, &[w_small]);
        assert!(v.pass);
        assert!(!v.reports[0].armed);
    }

    #[test]
    fn default_slos_pass_on_a_healthy_run_and_serialize() {
        let healthy = {
            let reg = Registry::new();
            reg.counter("rups_core_quality_grade_high").add(80);
            reg.counter("rups_core_quality_grade_medium").add(15);
            reg.counter("rups_core_quality_rejected").add(5);
            reg.counter("rups_core_inbox_accepted").add(95);
            reg.counter("rups_core_inbox_rejected_stale").add(5);
            let h = reg.histogram("rups_core_engine_query_ns");
            for _ in 0..100 {
                h.record(2_000_000);
            }
            reg.snapshot()
        };
        let specs = default_slos(250e6);
        let v = evaluate_slos(&specs, &healthy, std::slice::from_ref(&healthy));
        assert!(v.pass, "{:?}", v.reports);
        assert_eq!(v.reports.len(), specs.len());
        let json = serde_json::to_string(&v).unwrap();
        let back: SloVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        let spec_json = serde_json::to_string(&specs).unwrap();
        let spec_back: Vec<SloSpec> = serde_json::from_str(&spec_json).unwrap();
        assert_eq!(spec_back, specs);
    }
}

//! The lock-light metrics registry: named counters, gauges and histograms.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex and may
//! allocate — do it once at construction time and keep the returned handle.
//! The handles themselves are `Arc`-backed and record with relaxed atomics:
//! the hot path never locks, never allocates and never touches the
//! registry again.
//!
//! Naming convention (enforced only by review): `rups_<crate>_<subsystem>_
//! <metric>`, e.g. `rups_core_engine_context_hits` or
//! `rups_v2v_link_dropped`. Latency histograms end in `_ns`.

use crate::hist::{bucket_hi, Histogram, HistogramSample, ShapeMismatch};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone (unregistered) counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Resets to zero (for harness `reset_stats` paths; exporters should
    /// prefer [`MetricsSnapshot::delta`]).
    pub fn reset(&self) {
        self.0.store(0, Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64`. Cloning shares the value.
///
/// Alongside the value the gauge counts how many times it has been set:
/// fleet-level merges weight each node's reading by that sample count, so
/// a node that reported once does not count as much as one that reported
/// ten thousand times.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
    sets: Arc<AtomicU64>,
}

impl Gauge {
    /// A standalone (unregistered) gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value (and counts the observation).
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
        self.sets.fetch_add(1, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }

    /// How many times [`set`](Self::set) has been called.
    #[inline]
    pub fn samples(&self) -> u64 {
        self.sets.load(Relaxed)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// A named collection of metrics.
///
/// ```
/// use rups_obs::Registry;
///
/// let reg = Registry::new();
/// let hits = reg.counter("rups_core_engine_context_hits");
/// hits.inc();
/// hits.inc();
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("rups_core_engine_context_hits"), Some(2));
/// assert!(snap.to_prometheus().contains("rups_core_engine_context_hits 2"));
/// ```
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, registering a fresh one
    /// on first use. Handles are shared: every caller asking for the same
    /// name increments the same value.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Returns the gauge registered under `name`, registering on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::new();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Returns the histogram registered under `name`, registering on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::new();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock poisoned");
        let mut counters: Vec<CounterSample> = inner
            .counters
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = inner
            .gauges
            .iter()
            .map(|(n, g)| GaugeSample {
                name: n.clone(),
                value: g.get(),
                samples: g.samples(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> =
            inner.histograms.iter().map(|(n, h)| h.sample(n)).collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
    /// How many times the gauge had been set at snapshot time (the merge
    /// weight for fleet-level aggregation).
    pub samples: u64,
}

/// A point-in-time copy of a whole [`Registry`]: the unit every exporter
/// works on. (The serde representation uses sorted vectors of named
/// entries, not maps, so the JSON is stable and diff-friendly.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name, with quantiles pre-extracted.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The value of one counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of one gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// One histogram sample, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The change since an `earlier` snapshot of the same registry:
    /// counters and histogram buckets subtract (saturating, so a counter
    /// reset in between degrades to 0 rather than wrapping), gauges keep
    /// their current value, and histogram quantiles are recomputed over
    /// only the in-between samples. Metrics registered after `earlier`
    /// appear with their full value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSample {
                    name: c.name.clone(),
                    value: c
                        .value
                        .saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| match earlier.histogram(&h.name) {
                    Some(prev) => h.delta(prev),
                    None => h.clone(),
                })
                .collect(),
        }
    }

    /// Shape-checked [`delta`](Self::delta): the first histogram whose
    /// bucket layout disagrees with its earlier sample aborts the whole
    /// subtraction with a typed [`ShapeMismatch`] (naming the offending
    /// histogram) instead of degrading silently. Counter resets still
    /// saturate to the full current value, per Prometheus semantics.
    pub fn try_delta(&self, earlier: &MetricsSnapshot) -> Result<MetricsSnapshot, ShapeMismatch> {
        Ok(MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSample {
                    name: c.name.clone(),
                    value: c
                        .value
                        .saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| match earlier.histogram(&h.name) {
                    Some(prev) => h.try_delta(prev),
                    None => Ok(h.clone()),
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// A copy with the noise removed: zero-valued counters and
    /// never-recorded histograms are dropped, and surviving histograms
    /// clear their bucket vectors (count/sum/quantiles remain). Gauges are
    /// kept as-is — a zero gauge is a reading, not an absence. Intended for
    /// per-window deltas embedded in timelines and flight dumps, where the
    /// full 44-bucket arrays dominate artefact size.
    pub fn compact(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.value != 0)
                .cloned()
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.count != 0)
                .map(|h| {
                    let mut h = h.clone();
                    h.buckets = Vec::new();
                    h
                })
                .collect(),
        }
    }

    /// Prometheus text exposition (version 0.0.4): counters and gauges as
    /// single samples, histograms as cumulative `_bucket{le="…"}` series
    /// plus `_sum`/`_count`. Names are sanitised to the metric-name
    /// alphabet (`[a-zA-Z0-9_:]`, invalid bytes become `_`) and a metric
    /// name is emitted at most once — if sanitisation collides two names,
    /// the first (in sorted snapshot order) wins, keeping the exposition
    /// parseable.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_with_help(&[])
    }

    /// [`to_prometheus`](Self::to_prometheus) with `# HELP` lines: `help`
    /// maps metric names (raw or sanitised) to their description. HELP text
    /// is escaped per the exposition format ([`escape_help`]), so
    /// backslashes and newlines in a description cannot corrupt the frame.
    pub fn to_prometheus_with_help(&self, help: &[(&str, &str)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        let claim = |name: &str, seen: &mut Vec<String>| -> Option<String> {
            let clean = sanitize_metric_name(name);
            if seen.iter().any(|s| s == &clean) {
                return None;
            }
            seen.push(clean.clone());
            Some(clean)
        };
        let help_for = |raw: &str, clean: &str| -> Option<String> {
            help.iter()
                .find(|(n, _)| *n == raw || *n == clean)
                .map(|(_, text)| escape_help(text))
        };
        for c in &self.counters {
            let Some(name) = claim(&c.name, &mut seen) else {
                continue;
            };
            if let Some(h) = help_for(&c.name, &name) {
                let _ = writeln!(out, "# HELP {name} {h}");
            }
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        for g in &self.gauges {
            let Some(name) = claim(&g.name, &mut seen) else {
                continue;
            };
            if let Some(h) = help_for(&g.name, &name) {
                let _ = writeln!(out, "# HELP {name} {h}");
            }
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.value);
        }
        for h in &self.histograms {
            let Some(name) = claim(&h.name, &mut seen) else {
                continue;
            };
            if let Some(txt) = help_for(&h.name, &name) {
                let _ = writeln!(out, "# HELP {name} {txt}");
            }
            let h = HistogramSample {
                name: name.clone(),
                ..h.clone()
            };
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                let _ = writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    h.name,
                    escape_label_value(&bucket_hi(i).to_string()),
                    cum
                );
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }
}

/// Escapes HELP text per the Prometheus exposition format: `\` becomes
/// `\\` and a line feed becomes `\n`. (HELP text does not escape double
/// quotes — only label values do.)
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes a label value per the Prometheus exposition format: `\` becomes
/// `\\`, `"` becomes `\"` and a line feed becomes `\n`. Every emitted
/// label value (including machine-generated ones like fleet node labels)
/// must pass through here so an adversarial or accidental quote cannot
/// break out of the `{label="…"}` frame.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Maps an arbitrary name onto the Prometheus metric-name alphabet:
/// `[a-zA-Z0-9_:]` pass through, everything else becomes `_`, and a
/// leading digit gains a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (ch.is_ascii_digit() && i > 0);
        if ch.is_ascii_digit() && i == 0 {
            out.push('_');
            out.push(ch);
        } else {
            out.push(if ok { ch } else { '_' });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name must share one value");
        assert_eq!(reg.snapshot().counter("c"), Some(3));
        assert_eq!(reg.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauges_hold_last_value_and_count_sets() {
        let reg = Registry::new();
        let g = reg.gauge("rups_test_gauge");
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.samples(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("rups_test_gauge"), Some(-1.25));
        let sample = snap.gauges.iter().find(|g| g.name == "rups_test_gauge");
        assert_eq!(sample.map(|g| g.samples), Some(2));
        // A registered-but-never-set gauge reports zero weight.
        reg.gauge("rups_unset");
        let snap = reg.snapshot();
        let unset = snap.gauges.iter().find(|g| g.name == "rups_unset").unwrap();
        assert_eq!((unset.value, unset.samples), (0.0, 0));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z_last").inc();
        reg.counter("a_first").inc();
        reg.histogram("m_hist").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a_first");
        assert_eq!(snap.counters[1].name, "z_last");
        assert_eq!(snap.histogram("m_hist").unwrap().count, 1);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_new_metrics() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(5);
        let before = reg.snapshot();
        c.add(7);
        reg.counter("late").add(3); // registered after `before`
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counter("c"), Some(7));
        assert_eq!(d.counter("late"), Some(3));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("rups_x_total").add(4);
        reg.gauge("rups_g").set(1.5);
        let h = reg.histogram("rups_h_ns");
        h.record(100);
        h.record(1000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE rups_x_total counter"));
        assert!(text.contains("rups_x_total 4"));
        assert!(text.contains("rups_g 1.5"));
        assert!(text.contains("rups_h_ns_count 2"));
        assert!(text.contains("rups_h_ns_sum 1100"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
        // Cumulative buckets: the last finite bucket equals the count.
        assert!(text.contains("rups_h_ns_bucket{le=\"1024\"} 2"));
    }

    #[test]
    fn prometheus_names_are_escaped_and_types_deduped() {
        let reg = Registry::new();
        reg.counter("rups.weird-name").add(1); // '.' and '-' are invalid
        reg.counter("rups_weird_name").add(2); // sanitises to the same name
        reg.gauge("9starts_with_digit").set(0.5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("rups_weird_name"));
        assert!(!text.contains("rups.weird-name"), "raw name must not leak");
        assert!(text.contains("_9starts_with_digit 0.5"));
        // Exactly one TYPE line per emitted metric name.
        let mut type_names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let total = type_names.len();
        type_names.sort_unstable();
        type_names.dedup();
        assert_eq!(type_names.len(), total, "duplicate TYPE lines: {text}");
        // Every emitted name stays within the exposition alphabet.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "unescaped name in line: {line}"
            );
        }
    }

    /// Inverse of the exposition escapes, for round-trip testing only:
    /// `\\` → `\`, `\n` → line feed, `\"` → `"` (the last never appears in
    /// HELP text but is harmless to accept).
    fn unescape_exposition(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(ch) = chars.next() {
            if ch != '\\' {
                out.push(ch);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('"') => out.push('"'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn exposition_escaping_round_trips() {
        // Every nasty input must survive escape → unescape unchanged, and
        // the escaped form must be frame-safe (single line, and for label
        // values no bare quote).
        let cases = [
            "plain text",
            "back\\slash",
            "line\nbreak",
            "quote \" inside",
            "all \\ of \n them \" at once",
            "trailing backslash \\",
            "\n",
            "",
        ];
        for c in cases {
            let h = escape_help(c);
            assert!(!h.contains('\n'), "HELP must stay one line: {h:?}");
            assert_eq!(unescape_exposition(&h), c, "HELP round-trip of {c:?}");
            let l = escape_label_value(c);
            assert!(!l.contains('\n'), "label must stay one line: {l:?}");
            let mut bare_quote = false;
            let mut prev_backslashes = 0usize;
            for ch in l.chars() {
                if ch == '"' && prev_backslashes.is_multiple_of(2) {
                    bare_quote = true;
                }
                prev_backslashes = if ch == '\\' { prev_backslashes + 1 } else { 0 };
            }
            assert!(!bare_quote, "unescaped quote in label value: {l:?}");
            assert_eq!(unescape_exposition(&l), c, "label round-trip of {c:?}");
        }
    }

    #[test]
    fn help_lines_are_emitted_escaped() {
        let reg = Registry::new();
        reg.counter("rups_x_total").add(1);
        reg.histogram("rups_h_ns").record(7);
        let text = reg.snapshot().to_prometheus_with_help(&[
            ("rups_x_total", "totals with a \\ and\na newline"),
            ("rups_h_ns", "latency"),
            ("rups_missing", "never emitted"),
        ]);
        assert!(text.contains("# HELP rups_x_total totals with a \\\\ and\\na newline"));
        assert!(text.contains("# HELP rups_h_ns latency"));
        assert!(!text.contains("rups_missing"));
        // HELP precedes TYPE for the same metric.
        let help_at = text.find("# HELP rups_x_total").unwrap();
        let type_at = text.find("# TYPE rups_x_total").unwrap();
        assert!(help_at < type_at);
        // The exposition still parses line-by-line: no raw newline leaked
        // into any comment line.
        for line in text.lines().filter(|l| l.starts_with("# HELP")) {
            assert!(line.split_whitespace().count() >= 3, "empty HELP: {line}");
        }
    }

    #[test]
    fn try_delta_surfaces_shape_mismatch_by_name() {
        let reg = Registry::new();
        reg.counter("c").add(2);
        reg.histogram("h_ns").record(100);
        let full = reg.snapshot();
        let compacted = full.compact(); // clears bucket arrays
        let err = full.try_delta(&compacted).unwrap_err();
        assert_eq!(err.name, "h_ns");
        // The infallible path still answers, degrading per-histogram.
        let d = full.delta(&compacted);
        assert_eq!(d.counter("c"), Some(0));
        assert_eq!(d.histogram("h_ns").unwrap().count, 1);
        // Matching shapes pass through the typed path.
        let ok = full.try_delta(&full).unwrap();
        assert_eq!(ok.counter("c"), Some(0));
        assert_eq!(ok.histogram("h_ns").unwrap().count, 0);
    }

    #[test]
    fn compact_drops_zeroes_and_bucket_arrays() {
        let reg = Registry::new();
        reg.counter("live").add(3);
        reg.counter("dead"); // stays at zero
        reg.gauge("g").set(0.0);
        reg.histogram("used_ns").record(100);
        reg.histogram("untouched_ns"); // no samples
        let slim = reg.snapshot().compact();
        assert_eq!(slim.counter("live"), Some(3));
        assert_eq!(slim.counter("dead"), None, "zero counters dropped");
        assert_eq!(slim.gauge("g"), Some(0.0), "gauges survive at zero");
        let h = slim.histogram("used_ns").expect("recorded histogram kept");
        assert_eq!(h.count, 1);
        assert!(h.buckets.is_empty(), "bucket arrays cleared");
        assert!(slim.histogram("untouched_ns").is_none());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = Registry::new();
        reg.counter("c").add(2);
        reg.histogram("h").record(64);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}

//! Fixed-bucket log₂-scale histograms for latency (and other positive
//! integer) samples.
//!
//! The record path is allocation-free and lock-free: a sample lands in one
//! of [`N_BUCKETS`] power-of-two buckets with three relaxed atomic
//! increments (bucket, count, sum). Bucket `i` covers `[2^i, 2^(i+1))`
//! nanoseconds (bucket 0 additionally absorbs 0 and 1); the top bucket
//! saturates, absorbing every sample at or above [`TOP_BUCKET_LO`]. With 44
//! buckets the range spans 1 ns to ≈4.9 hours — comfortably wider than any
//! latency this workspace measures.
//!
//! Quantiles (p50/p95/p99) are extracted from a [`HistogramSample`]
//! snapshot by walking the cumulative bucket counts and interpolating
//! linearly inside the target bucket, so they are deterministic functions
//! of the bucket contents.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of log₂ buckets per histogram.
pub const N_BUCKETS: usize = 44;

/// Lower bound of the saturating top bucket (`2^(N_BUCKETS-1)` ns ≈ 2.4 h).
pub const TOP_BUCKET_LO: u64 = 1 << (N_BUCKETS - 1);

/// The bucket a value lands in: `floor(log₂ v)` clamped to the bucket
/// range; 0 and 1 share bucket 0, anything ≥ [`TOP_BUCKET_LO`] saturates
/// into the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    ((63 - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1 << i
    }
}

/// Exclusive upper bound of bucket `i`. The top bucket reports `2^N_BUCKETS`
/// so interpolation stays finite even though it absorbs every larger value.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    1 << (i + 1)
}

pub(crate) struct HistInner {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cheap-to-clone handle to one histogram. Cloning shares the underlying
/// buckets; recording through any clone is visible to all.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Relaxed))
            .field("sum", &self.0.sum.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A standalone (unregistered) histogram. Registered ones come from
    /// [`crate::registry::Registry::histogram`].
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner::new()))
    }

    /// Records one sample. Allocation-free: three relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Starts a wall-clock timer that records the elapsed nanoseconds into
    /// this histogram when dropped. With the `obs` feature disabled this is
    /// a no-op that never reads the clock.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer::start(self)
    }

    /// An immutable snapshot of the bucket contents (quantiles included),
    /// tagged with `name`.
    pub fn sample(&self, name: &str) -> HistogramSample {
        let buckets: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSample::from_buckets(
            name.to_string(),
            self.0.count.load(Relaxed),
            self.0.sum.load(Relaxed),
            buckets,
        )
    }
}

/// Guard recording elapsed wall-clock nanoseconds into a [`Histogram`] on
/// drop. Zero-sized and inert when the `obs` feature is disabled.
#[must_use = "a dropped timer records immediately; bind it to a variable"]
pub struct Timer {
    #[cfg(feature = "obs")]
    hist: Histogram,
    #[cfg(feature = "obs")]
    start: std::time::Instant,
}

impl Timer {
    #[inline]
    fn start(hist: &Histogram) -> Self {
        #[cfg(feature = "obs")]
        {
            Timer {
                hist: hist.clone(),
                start: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = hist;
            Timer {}
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Two histogram samples disagreed about their bucket layout: subtracting
/// or merging them bucket-by-bucket would silently misattribute counts, so
/// the shape-checked operations ([`HistogramSample::try_delta`],
/// [`HistogramSample::try_merge`]) refuse with this error instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeMismatch {
    /// Name of the histogram whose shapes disagreed.
    pub name: String,
    /// Bucket count of the left-hand sample.
    pub expected: usize,
    /// Bucket count of the right-hand sample.
    pub got: usize,
}

impl std::fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram {:?}: bucket shape mismatch ({} vs {})",
            self.name, self.expected, self.got
        )
    }
}

impl std::error::Error for ShapeMismatch {}

/// A named point-in-time copy of one histogram: raw bucket counts plus the
/// quantiles extracted from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Registered metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (ns for latency histograms).
    pub sum: u64,
    /// Median, interpolated (0 when empty).
    pub p50: f64,
    /// 95th percentile, interpolated (0 when empty).
    pub p95: f64,
    /// 99th percentile, interpolated (0 when empty).
    pub p99: f64,
    /// Per-bucket counts, [`N_BUCKETS`] entries; bucket `i` covers
    /// `[bucket_lo(i), bucket_hi(i))`.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Builds a sample from raw bucket counts, extracting the standard
    /// quantiles. An empty bucket vector (the [`compact`]ed form, counts
    /// and sum only) is accepted; its quantiles degrade to 0.
    ///
    /// [`compact`]: crate::registry::MetricsSnapshot::compact
    pub fn from_buckets(name: String, count: u64, sum: u64, buckets: Vec<u64>) -> Self {
        debug_assert!(buckets.is_empty() || buckets.len() == N_BUCKETS);
        let q = |p| {
            if buckets.is_empty() {
                0.0
            } else {
                quantile_of(&buckets, count, p).unwrap_or(0.0)
            }
        };
        HistogramSample {
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            name,
            count,
            sum,
            buckets,
        }
    }

    /// Interpolated quantile (`q` in `(0, 1]`); `None` on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_of(&self.buckets, self.count, q)
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The change since an `earlier` sample of the same histogram:
    /// bucket-wise saturating difference with quantiles recomputed over the
    /// difference, i.e. the distribution of only the samples recorded in
    /// between.
    ///
    /// Infallible convenience over [`try_delta`](Self::try_delta): a bucket
    /// shape mismatch degrades to the full current sample (as if `earlier`
    /// were from before the histogram existed) rather than misattributing
    /// counts across differently-shaped buckets.
    pub fn delta(&self, earlier: &HistogramSample) -> HistogramSample {
        self.try_delta(earlier).unwrap_or_else(|_| self.clone())
    }

    /// Shape-checked [`delta`](Self::delta): errors when the two samples
    /// disagree about their bucket count instead of guessing an alignment.
    ///
    /// A *counter reset* in between (any bucket or the total count shrank —
    /// the histogram was replaced or zeroed) cannot yield a meaningful
    /// difference; per Prometheus reset semantics the delta degrades to the
    /// full current sample. Ordinary in-between recording only ever grows
    /// buckets, so this never triggers on live data.
    pub fn try_delta(&self, earlier: &HistogramSample) -> Result<HistogramSample, ShapeMismatch> {
        if self.buckets.len() != earlier.buckets.len() {
            return Err(ShapeMismatch {
                name: self.name.clone(),
                expected: self.buckets.len(),
                got: earlier.buckets.len(),
            });
        }
        let reset = self.count < earlier.count
            || self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .any(|(now, then)| now < then);
        if reset {
            return Ok(self.clone());
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        Ok(HistogramSample::from_buckets(
            self.name.clone(),
            self.count.saturating_sub(earlier.count),
            self.sum.saturating_sub(earlier.sum),
            buckets,
        ))
    }

    /// Merges another sample of the *same-shaped* histogram into this one
    /// (bucket-wise saturating sum, quantiles recomputed over the union) —
    /// the primitive fleet aggregation is built on. The merged sample keeps
    /// this sample's name. Errors on a bucket-count mismatch.
    pub fn try_merge(&self, other: &HistogramSample) -> Result<HistogramSample, ShapeMismatch> {
        if self.buckets.len() != other.buckets.len() {
            return Err(ShapeMismatch {
                name: self.name.clone(),
                expected: self.buckets.len(),
                got: other.buckets.len(),
            });
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(a, b)| a.saturating_add(*b))
            .collect();
        Ok(HistogramSample::from_buckets(
            self.name.clone(),
            self.count.saturating_add(other.count),
            self.sum.saturating_add(other.sum),
            buckets,
        ))
    }
}

/// Shared quantile walk: find the bucket holding the `ceil(q·count)`-th
/// sample and interpolate linearly within it.
fn quantile_of(buckets: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c >= target {
            let lo = bucket_lo(i) as f64;
            let hi = bucket_hi(i) as f64;
            let frac = (target - cum) as f64 / c as f64;
            return Some(lo + (hi - lo) * frac);
        }
        cum += c;
    }
    // Unreachable when bucket counts are consistent with `count`; fall back
    // to the top bucket's upper bound.
    Some(bucket_hi(N_BUCKETS - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 and 1 share bucket 0; powers of two open a new bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 10);
        // Every bucket's bounds contain exactly its own values.
        for i in 1..N_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i) - 1), i, "hi-1 of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i + 1, "hi of bucket {i}");
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(TOP_BUCKET_LO); // exactly at the top bucket's lower bound
        h.record(u64::MAX); // astronomically beyond the range
        let s = h.sample("t");
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[N_BUCKETS - 1], 2, "both saturate into the top");
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
        // Quantiles stay finite despite the saturated samples.
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99.is_finite());
        assert!(p99 <= bucket_hi(N_BUCKETS - 1) as f64);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_none() {
        let s = Histogram::new().sample("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        // The convenience fields degrade to 0 rather than NaN.
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn quantiles_on_single_sample_land_in_its_bucket() {
        let h = Histogram::new();
        h.record(1000); // bucket 9: [512, 1024)
        let s = h.sample("one");
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(
                (512.0..=1024.0).contains(&v),
                "q{q} escaped the sample's bucket: {v}"
            );
        }
        assert_eq!(s.mean(), Some(1000.0));
    }

    #[test]
    fn quantiles_interpolate_monotonically() {
        let h = Histogram::new();
        for v in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record(v);
        }
        let s = h.sample("spread");
        let p50 = s.quantile(0.50).unwrap();
        let p95 = s.quantile(0.95).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The median of 10 log-spaced samples sits around the 5th value.
        assert!((64.0..=256.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= 4096.0, "p99 {p99}");
    }

    #[test]
    fn delta_isolates_the_new_samples() {
        let h = Histogram::new();
        h.record(100);
        h.record(100);
        let before = h.sample("d");
        for _ in 0..98 {
            h.record(1_000_000);
        }
        let after = h.sample("d");
        let d = after.delta(&before);
        assert_eq!(d.count, 98);
        assert_eq!(d.sum, 98 * 1_000_000);
        // All delta samples live in one bucket; the old ones vanished.
        assert_eq!(d.buckets[bucket_index(100)], 0);
        assert_eq!(d.buckets[bucket_index(1_000_000)], 98);
        let p50 = d.quantile(0.5).unwrap();
        assert!((bucket_lo(bucket_index(1_000_000)) as f64
            ..=bucket_hi(bucket_index(1_000_000)) as f64)
            .contains(&p50));
    }

    /// Builds a sample with `v` recorded `n` times per `(v, n)` pair.
    fn sample_of(name: &str, pairs: &[(u64, u64)]) -> HistogramSample {
        let h = Histogram::new();
        for &(v, n) in pairs {
            for _ in 0..n {
                h.record(v);
            }
        }
        h.sample(name)
    }

    #[test]
    fn try_delta_and_merge_table() {
        let empty = sample_of("t", &[]);
        let two = sample_of("t", &[(100, 2)]);
        let five = sample_of("t", &[(100, 2), (4000, 3)]);
        let compacted = HistogramSample {
            buckets: Vec::new(),
            ..five.clone()
        };
        struct Case {
            what: &'static str,
            now: HistogramSample,
            then: HistogramSample,
            delta_count: Option<u64>, // None → expect ShapeMismatch
        }
        let cases = [
            Case {
                what: "normal growth isolates new samples",
                now: five.clone(),
                then: two.clone(),
                delta_count: Some(3),
            },
            Case {
                what: "no growth yields an empty delta",
                now: two.clone(),
                then: two.clone(),
                delta_count: Some(0),
            },
            Case {
                what: "counter reset degrades to the full current sample",
                now: two.clone(),
                then: five.clone(),
                delta_count: Some(2),
            },
            Case {
                what: "both empty-shaped (compacted) samples subtract",
                now: compacted.clone(),
                then: compacted.clone(),
                delta_count: Some(0),
            },
            Case {
                what: "full vs compacted shape is a typed error",
                now: five.clone(),
                then: compacted.clone(),
                delta_count: None,
            },
            Case {
                what: "compacted vs full shape is a typed error",
                now: compacted.clone(),
                then: five.clone(),
                delta_count: None,
            },
        ];
        for c in &cases {
            match (c.now.try_delta(&c.then), c.delta_count) {
                (Ok(d), Some(want)) => {
                    assert_eq!(d.count, want, "{}", c.what);
                    assert_eq!(
                        d.buckets.iter().sum::<u64>(),
                        if d.buckets.is_empty() { 0 } else { want },
                        "{}: bucket mass must match the count",
                        c.what
                    );
                }
                (Err(e), None) => {
                    assert_eq!(e.name, "t", "{}", c.what);
                    assert_ne!(e.expected, e.got, "{}", c.what);
                }
                (got, want) => panic!("{}: got {:?}, wanted count {:?}", c.what, got, want),
            }
            // The infallible wrapper never misattributes: on mismatch it
            // returns the full current sample.
            let d = c.now.delta(&c.then);
            if c.delta_count.is_none() {
                assert_eq!(d, c.now, "{}: fallback must be the current sample", c.what);
            }
        }
        // A cross-node bucket shrink (not a uniform reset) is also a reset.
        let shifted = sample_of("t", &[(100, 1), (4000, 4)]); // same count, moved mass
        assert_eq!(five.try_delta(&shifted).unwrap(), five);

        // Merge: counts, sums and bucket mass add; mismatched shapes error.
        let m = two.try_merge(&five).unwrap();
        assert_eq!(m.count, 7);
        assert_eq!(m.sum, two.sum + five.sum);
        assert_eq!(m.buckets.iter().sum::<u64>(), 7);
        assert_eq!(m.buckets[bucket_index(100)], 4);
        assert_eq!(m.buckets[bucket_index(4000)], 3);
        assert!(m.quantile(0.99).unwrap() >= 2048.0);
        assert!(five.try_merge(&compacted).is_err());
        assert_eq!(empty.try_merge(&five).unwrap().count, 5);
        let e = compacted.try_merge(&five).unwrap_err();
        assert_eq!((e.expected, e.got), (0, N_BUCKETS));
        assert!(e.to_string().contains("shape mismatch"), "{e}");
    }

    #[test]
    fn timer_records_when_obs_enabled() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::hint::black_box((0..100).sum::<u64>());
        }
        #[cfg(feature = "obs")]
        assert_eq!(h.count(), 1);
        #[cfg(not(feature = "obs"))]
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.sample("mt");
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}

//! Fixed-bucket log₂-scale histograms for latency (and other positive
//! integer) samples.
//!
//! The record path is allocation-free and lock-free: a sample lands in one
//! of [`N_BUCKETS`] power-of-two buckets with three relaxed atomic
//! increments (bucket, count, sum). Bucket `i` covers `[2^i, 2^(i+1))`
//! nanoseconds (bucket 0 additionally absorbs 0 and 1); the top bucket
//! saturates, absorbing every sample at or above [`TOP_BUCKET_LO`]. With 44
//! buckets the range spans 1 ns to ≈4.9 hours — comfortably wider than any
//! latency this workspace measures.
//!
//! Quantiles (p50/p95/p99) are extracted from a [`HistogramSample`]
//! snapshot by walking the cumulative bucket counts and interpolating
//! linearly inside the target bucket, so they are deterministic functions
//! of the bucket contents.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of log₂ buckets per histogram.
pub const N_BUCKETS: usize = 44;

/// Lower bound of the saturating top bucket (`2^(N_BUCKETS-1)` ns ≈ 2.4 h).
pub const TOP_BUCKET_LO: u64 = 1 << (N_BUCKETS - 1);

/// The bucket a value lands in: `floor(log₂ v)` clamped to the bucket
/// range; 0 and 1 share bucket 0, anything ≥ [`TOP_BUCKET_LO`] saturates
/// into the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    ((63 - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1 << i
    }
}

/// Exclusive upper bound of bucket `i`. The top bucket reports `2^N_BUCKETS`
/// so interpolation stays finite even though it absorbs every larger value.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    1 << (i + 1)
}

pub(crate) struct HistInner {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cheap-to-clone handle to one histogram. Cloning shares the underlying
/// buckets; recording through any clone is visible to all.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Relaxed))
            .field("sum", &self.0.sum.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A standalone (unregistered) histogram. Registered ones come from
    /// [`crate::registry::Registry::histogram`].
    pub fn new() -> Self {
        Histogram(Arc::new(HistInner::new()))
    }

    /// Records one sample. Allocation-free: three relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Starts a wall-clock timer that records the elapsed nanoseconds into
    /// this histogram when dropped. With the `obs` feature disabled this is
    /// a no-op that never reads the clock.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer::start(self)
    }

    /// An immutable snapshot of the bucket contents (quantiles included),
    /// tagged with `name`.
    pub fn sample(&self, name: &str) -> HistogramSample {
        let buckets: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSample::from_buckets(
            name.to_string(),
            self.0.count.load(Relaxed),
            self.0.sum.load(Relaxed),
            buckets,
        )
    }
}

/// Guard recording elapsed wall-clock nanoseconds into a [`Histogram`] on
/// drop. Zero-sized and inert when the `obs` feature is disabled.
#[must_use = "a dropped timer records immediately; bind it to a variable"]
pub struct Timer {
    #[cfg(feature = "obs")]
    hist: Histogram,
    #[cfg(feature = "obs")]
    start: std::time::Instant,
}

impl Timer {
    #[inline]
    fn start(hist: &Histogram) -> Self {
        #[cfg(feature = "obs")]
        {
            Timer {
                hist: hist.clone(),
                start: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = hist;
            Timer {}
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// A named point-in-time copy of one histogram: raw bucket counts plus the
/// quantiles extracted from them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Registered metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (ns for latency histograms).
    pub sum: u64,
    /// Median, interpolated (0 when empty).
    pub p50: f64,
    /// 95th percentile, interpolated (0 when empty).
    pub p95: f64,
    /// 99th percentile, interpolated (0 when empty).
    pub p99: f64,
    /// Per-bucket counts, [`N_BUCKETS`] entries; bucket `i` covers
    /// `[bucket_lo(i), bucket_hi(i))`.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Builds a sample from raw bucket counts, extracting the standard
    /// quantiles.
    pub fn from_buckets(name: String, count: u64, sum: u64, buckets: Vec<u64>) -> Self {
        debug_assert_eq!(buckets.len(), N_BUCKETS);
        let q = |p| quantile_of(&buckets, count, p).unwrap_or(0.0);
        HistogramSample {
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            name,
            count,
            sum,
            buckets,
        }
    }

    /// Interpolated quantile (`q` in `(0, 1]`); `None` on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_of(&self.buckets, self.count, q)
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The change since an `earlier` sample of the same histogram:
    /// bucket-wise saturating difference with quantiles recomputed over the
    /// difference, i.e. the distribution of only the samples recorded in
    /// between.
    pub fn delta(&self, earlier: &HistogramSample) -> HistogramSample {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSample::from_buckets(
            self.name.clone(),
            self.count.saturating_sub(earlier.count),
            self.sum.saturating_sub(earlier.sum),
            buckets,
        )
    }
}

/// Shared quantile walk: find the bucket holding the `ceil(q·count)`-th
/// sample and interpolate linearly within it.
fn quantile_of(buckets: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c >= target {
            let lo = bucket_lo(i) as f64;
            let hi = bucket_hi(i) as f64;
            let frac = (target - cum) as f64 / c as f64;
            return Some(lo + (hi - lo) * frac);
        }
        cum += c;
    }
    // Unreachable when bucket counts are consistent with `count`; fall back
    // to the top bucket's upper bound.
    Some(bucket_hi(N_BUCKETS - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 and 1 share bucket 0; powers of two open a new bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 10);
        // Every bucket's bounds contain exactly its own values.
        for i in 1..N_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i) - 1), i, "hi-1 of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i + 1, "hi of bucket {i}");
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(TOP_BUCKET_LO); // exactly at the top bucket's lower bound
        h.record(u64::MAX); // astronomically beyond the range
        let s = h.sample("t");
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[N_BUCKETS - 1], 2, "both saturate into the top");
        assert_eq!(s.buckets.iter().sum::<u64>(), 2);
        // Quantiles stay finite despite the saturated samples.
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99.is_finite());
        assert!(p99 <= bucket_hi(N_BUCKETS - 1) as f64);
    }

    #[test]
    fn quantiles_on_empty_histogram_are_none() {
        let s = Histogram::new().sample("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        // The convenience fields degrade to 0 rather than NaN.
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn quantiles_on_single_sample_land_in_its_bucket() {
        let h = Histogram::new();
        h.record(1000); // bucket 9: [512, 1024)
        let s = h.sample("one");
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!(
                (512.0..=1024.0).contains(&v),
                "q{q} escaped the sample's bucket: {v}"
            );
        }
        assert_eq!(s.mean(), Some(1000.0));
    }

    #[test]
    fn quantiles_interpolate_monotonically() {
        let h = Histogram::new();
        for v in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120] {
            h.record(v);
        }
        let s = h.sample("spread");
        let p50 = s.quantile(0.50).unwrap();
        let p95 = s.quantile(0.95).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // The median of 10 log-spaced samples sits around the 5th value.
        assert!((64.0..=256.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= 4096.0, "p99 {p99}");
    }

    #[test]
    fn delta_isolates_the_new_samples() {
        let h = Histogram::new();
        h.record(100);
        h.record(100);
        let before = h.sample("d");
        for _ in 0..98 {
            h.record(1_000_000);
        }
        let after = h.sample("d");
        let d = after.delta(&before);
        assert_eq!(d.count, 98);
        assert_eq!(d.sum, 98 * 1_000_000);
        // All delta samples live in one bucket; the old ones vanished.
        assert_eq!(d.buckets[bucket_index(100)], 0);
        assert_eq!(d.buckets[bucket_index(1_000_000)], 98);
        let p50 = d.quantile(0.5).unwrap();
        assert!((bucket_lo(bucket_index(1_000_000)) as f64
            ..=bucket_hi(bucket_index(1_000_000)) as f64)
            .contains(&p50));
    }

    #[test]
    fn timer_records_when_obs_enabled() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::hint::black_box((0..100).sum::<u64>());
        }
        #[cfg(feature = "obs")]
        assert_eq!(h.count(), 1);
        #[cfg(not(feature = "obs"))]
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.sample("mt");
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}

//! Property-based tests of the V2V wire formats.

use bytes::Bytes;
use proptest::prelude::*;
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::{GsmTrajectory, PowerVector};
use rups_core::pipeline::ContextSnapshot;
use v2v_sim::codec::{
    decode_snapshot, dequantise_rssi, encode_snapshot, encoded_size, quantise_rssi,
};
use v2v_sim::wsm::{fragment, reassemble, WsmConfig};

/// Strategy: a random snapshot with arbitrary missing-channel patterns.
fn snapshot_strategy() -> impl Strategy<Value = ContextSnapshot> {
    (
        1usize..6,                          // n_channels
        0usize..40,                         // len
        proptest::option::of(any::<u64>()), // vehicle id
        any::<u32>(),                       // value seed
    )
        .prop_map(|(n_channels, len, vehicle_id, seed)| {
            let mut geo = GeoTrajectory::new();
            let mut gsm = GsmTrajectory::new(n_channels);
            let mut h = seed as u64;
            let mut next = move || {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h
            };
            for i in 0..len {
                let heading = ((next() % 6283) as f64 / 1000.0) - std::f64::consts::PI;
                geo.push(GeoSample {
                    heading_rad: heading,
                    timestamp_s: 1e6 + i as f64 * 0.37,
                });
                gsm.push(&PowerVector::from_fn(n_channels, |_| {
                    if next() % 4 == 0 {
                        None
                    } else {
                        Some(-110.0 + (next() % 1200) as f32 / 10.0)
                    }
                }));
            }
            ContextSnapshot {
                vehicle_id,
                geo,
                gsm,
                trace: None,
            }
        })
}

proptest! {
    #[test]
    fn codec_roundtrip_preserves_snapshot(snap in snapshot_strategy()) {
        let wire = encode_snapshot(&snap);
        prop_assert_eq!(wire.len(),
            encoded_size(snap.len(), snap.gsm.n_channels())
                - if snap.vehicle_id.is_none() { 8 } else { 0 });
        let back = decode_snapshot(&wire).unwrap();
        prop_assert_eq!(back.vehicle_id, snap.vehicle_id);
        prop_assert_eq!(back.len(), snap.len());
        prop_assert_eq!(back.gsm.n_channels(), snap.gsm.n_channels());
        for i in 0..snap.len() {
            let a = snap.geo.samples()[i];
            let b = back.geo.samples()[i];
            prop_assert!((a.heading_rad - b.heading_rad).abs() < 2e-4);
            prop_assert!((a.timestamp_s - b.timestamp_s).abs() < 1e-2);
            for ch in 0..snap.gsm.n_channels() {
                match (snap.gsm.get(ch, i), back.gsm.get(ch, i)) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() <= 0.25 + 1e-6,
                        "rssi {x} decoded as {y}"),
                    (None, None) => {}
                    other => prop_assert!(false, "missingness flipped: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn truncated_payloads_never_panic(snap in snapshot_strategy(), cut in 0usize..64) {
        let wire = encode_snapshot(&snap);
        let keep = wire.len().saturating_sub(cut);
        // Must return an error or a valid snapshot — never panic.
        let _ = decode_snapshot(&wire[..keep]);
    }

    #[test]
    fn corrupted_headers_never_panic(snap in snapshot_strategy(), idx in 0usize..16, bit in 0u8..8) {
        let mut wire = encode_snapshot(&snap).to_vec();
        if !wire.is_empty() {
            let i = idx % wire.len();
            wire[i] ^= 1 << bit;
            let _ = decode_snapshot(&wire);
        }
    }

    #[test]
    fn rssi_quantisation_error_is_bounded(x in -110.0f32..17.0) {
        let q = quantise_rssi(x);
        prop_assert_ne!(q, 255, "in-range value must not map to the missing sentinel");
        let back = dequantise_rssi(q);
        prop_assert!((back - x).abs() <= 0.25 + 1e-6, "{x} → {q} → {back}");
    }

    #[test]
    fn rssi_quantisation_is_monotone(a in -120.0f32..25.0, b in -120.0f32..25.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantise_rssi(lo) <= quantise_rssi(hi));
    }

    #[test]
    fn fragmentation_roundtrips_any_payload(data in proptest::collection::vec(any::<u8>(), 0..8000)) {
        let cfg = WsmConfig::default();
        let payload = Bytes::from(data.clone());
        let frags = fragment(&payload, &cfg);
        prop_assert!(frags.iter().all(|f| f.len() <= cfg.payload_bytes && !f.is_empty()));
        prop_assert_eq!(frags.len(), cfg.packets_for(data.len()));
        prop_assert_eq!(reassemble(&frags), payload);
    }
}

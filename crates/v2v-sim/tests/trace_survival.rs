//! Property: a causal trace survives the hostile wire intact.
//!
//! Beacons cross a fault-injected link that duplicates, reorders, drops,
//! truncates and bit-flips payloads. Whatever the channel does, the merged
//! fleet trace must stay sound:
//!
//! - **no duplicate intakes** — per receiver, at most one `inbox.validate`
//!   span is tagged with a given trace id, no matter how many copies of
//!   the beacon arrive;
//! - **no orphans** — every trace id attached to any span resolves to a
//!   `v2v.beacon` root span recorded by the sender (corrupt payloads must
//!   never plant a trace id nobody minted).
//!
//! The first property rests on the inbox's tagged-trace ring, the second
//! on the codec's self-verifying trace ids (a hash of sender id + beacon
//! sequence, recomputed on decode).

use proptest::prelude::*;
use rups_core::config::RupsConfig;
use rups_core::geo::GeoSample;
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::RupsNode;
use rups_obs::{merged_chrome_trace, NodeTrace, SpanRecorder, TRACE_ARG};
use std::sync::Arc;
use v2v_sim::codec::{decode_snapshot, encode_snapshot};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

const N_CHANNELS: usize = 8;
const SENDER: u64 = 1;
const RECEIVERS: [u64; 2] = [2, 3];

fn fault_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        0.0f64..0.4,  // duplicate
        0.0f64..0.4,  // reorder
        0.0f64..0.25, // corrupt
        0.0f64..0.2,  // truncate
        0.0f64..0.3,  // loss (uniform)
    )
        .prop_map(|(duplicate, reorder, corrupt, truncate, loss)| FaultConfig {
            duplicate,
            reorder,
            corrupt,
            truncate,
            jitter_s: 0.02,
            ..FaultConfig::iid_loss(loss)
        })
}

/// Runs `n_beacons` traced broadcasts through a faulty link and returns
/// the merged multi-vehicle Chrome trace.
fn run_convoy(faults: FaultConfig, seed: u64, n_beacons: u32) -> rups_obs::ChromeTrace {
    let cfg = RupsConfig {
        n_channels: N_CHANNELS,
        window_channels: N_CHANNELS,
        ..RupsConfig::default()
    };
    let mut sender = RupsNode::new(cfg.clone()).with_vehicle_id(SENDER);
    let sender_spans = Arc::new(SpanRecorder::new(4096));

    let link = V2vLink::with_faults(faults, seed).with_spans(Arc::clone(&sender_spans));
    let tx = link.join(SENDER);
    let rx: Vec<_> = RECEIVERS.iter().map(|&id| link.join(id)).collect();

    let mut inboxes: Vec<(Arc<SpanRecorder>, SnapshotInbox)> = RECEIVERS
        .iter()
        .map(|_| {
            let spans = Arc::new(SpanRecorder::new(4096));
            let inbox = SnapshotInbox::new(InboxConfig::for_rups(&cfg, 30.0))
                .with_spans(Arc::clone(&spans));
            (spans, inbox)
        })
        .collect();

    // Seed the sender's journey context.
    fn append(node: &mut RupsNode, metre: &mut usize, metres: usize) {
        for _ in 0..metres {
            let s = *metre as f64;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: s,
                },
                &PowerVector::from_fn(N_CHANNELS, |ch| {
                    Some(rups_core::testfield::rssi(5, s, ch))
                }),
            )
            .unwrap();
            *metre += 1;
        }
    }
    let mut metre = 0usize;
    append(&mut sender, &mut metre, 40);

    for seq in 0..n_beacons {
        append(&mut sender, &mut metre, 3);
        let now_s = metre as f64;
        let (snap, ctx) = sender.traced_snapshot(None, seq);
        let ctx = ctx.expect("sender has a vehicle id");
        {
            let mut g = sender_spans.span("v2v.beacon");
            g.set_args(ctx.args());
        }
        tx.broadcast_traced(now_s, encode_snapshot(&snap), ctx);
    }

    // Drain everything the channel delivered (reordering can push arrivals
    // past the last beacon's send time).
    let t_end = metre as f64 + FaultConfig::default().reorder_delay_s + 10.0;
    for (ep, (_, inbox)) in rx.iter().zip(inboxes.iter_mut()) {
        for delivery in ep.poll_until(t_end) {
            if let Ok(snap) = decode_snapshot(&delivery.payload) {
                let _ = inbox.accept(snap, delivery.arrival_s);
            }
        }
    }

    let mut nodes = vec![NodeTrace::new(
        SENDER,
        "vehicle-1",
        sender_spans.recent(),
    )];
    for (&id, (spans, _)) in RECEIVERS.iter().zip(inboxes.iter()) {
        nodes.push(NodeTrace::new(id, format!("vehicle-{id}"), spans.recent()));
    }
    merged_chrome_trace(&nodes)
}

/// The `trace` arg of a merged event, when present.
fn trace_of(event: &rups_obs::ChromeTraceEvent) -> Option<i64> {
    match &event.args {
        serde::value::Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == TRACE_ARG)
            .and_then(|(_, v)| v.as_i64()),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
    })]

    #[test]
    fn merged_trace_has_no_duplicate_or_orphan_spans(
        faults in fault_strategy(),
        seed in any::<u64>(),
        n_beacons in 2u32..7,
    ) {
        let merged = run_convoy(faults, seed, n_beacons);
        if !cfg!(feature = "obs") {
            // Without the obs feature span recording compiles to no-ops;
            // nothing to check.
            return Ok(());
        }

        let roots: std::collections::HashSet<i64> = merged
            .span_events()
            .filter(|e| e.name == "v2v.beacon")
            .filter_map(trace_of)
            .collect();
        prop_assert!(!roots.is_empty(), "sender must record beacon roots");

        let mut validated: std::collections::HashMap<(u64, i64), usize> =
            std::collections::HashMap::new();
        for event in merged.span_events() {
            let Some(trace) = trace_of(event) else { continue };
            // Orphan check: every tagged span's trace id was minted by the
            // sender, bit-flipped payloads notwithstanding.
            prop_assert!(
                roots.contains(&trace),
                "span {:?} on pid {} carries unminted trace {trace}",
                event.name,
                event.pid,
            );
            if event.name == "inbox.validate" {
                *validated.entry((event.pid, trace)).or_default() += 1;
            }
        }
        // Duplicate check: however often the link re-delivers a beacon,
        // each receiver validates its trace at most once.
        for ((pid, trace), count) in validated {
            prop_assert!(
                count <= 1,
                "receiver {pid} tagged trace {trace} {count} times",
            );
        }
    }
}

#[test]
fn tagged_validate_spans_appear_on_a_clean_link() {
    if !cfg!(feature = "obs") {
        return;
    }
    let merged = run_convoy(v2v_sim::fault::FaultConfig::ideal(), 7, 4);
    let tagged: Vec<_> = merged
        .span_events()
        .filter(|e| e.name == "inbox.validate")
        .filter_map(trace_of)
        .collect();
    // 2 receivers × 4 beacons, lossless: every intake is tagged exactly once.
    assert_eq!(tagged.len(), 8, "every beacon tags one intake per receiver");
    let beacons = merged
        .span_events()
        .filter(|e| e.name == "v2v.beacon")
        .count();
    assert_eq!(beacons, 4);
}

//! Fuzz suite for the snapshot wire codec.
//!
//! The decoder sits directly behind the radio: every byte string a faulty
//! or hostile link can produce must come back as `Ok(snapshot)` or a typed
//! [`CodecError`] — never a panic, never an inconsistent snapshot. Three
//! attack surfaces are fuzzed:
//!
//! 1. arbitrary byte strings (no structure at all),
//! 2. byte strings that start with a valid header prefix (to reach the
//!    deeper parse branches the random case rarely finds), and
//! 3. *mutated valid encodings* — bit flips, byte rewrites, truncations
//!    and garbage extensions of real snapshots, which is exactly what the
//!    `fault` module's corruption model hands the decoder.
//!
//! Run with `PROPTEST_CASES=512` (CI does) for a deeper sweep.

use proptest::prelude::*;
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::{GsmTrajectory, PowerVector};
use rups_core::pipeline::ContextSnapshot;
use v2v_sim::codec::{decode_snapshot, encode_snapshot, try_encode_snapshot};

/// The header magic, little-endian "RUPS".
const MAGIC: [u8; 4] = 0x5350_5552u32.to_le_bytes();

/// Structural invariants every successfully decoded snapshot must satisfy,
/// no matter how damaged the input was.
fn assert_consistent(snap: &ContextSnapshot) -> Result<(), TestCaseError> {
    prop_assert_eq!(snap.geo.len(), snap.gsm.len());
    let mut prev = f64::NEG_INFINITY;
    for s in snap.geo.samples() {
        prop_assert!(s.timestamp_s.is_finite(), "non-finite timestamp decoded");
        prop_assert!(
            s.timestamp_s >= prev,
            "decoded timestamps regress: {} after {}",
            s.timestamp_s,
            prev
        );
        prop_assert!(s.heading_rad.is_finite());
        prev = s.timestamp_s;
    }
    for ch in 0..snap.gsm.n_channels() {
        for i in 0..snap.gsm.len() {
            if let Some(rssi) = snap.gsm.get(ch, i) {
                prop_assert!(rssi.is_finite(), "non-finite RSSI decoded");
            }
        }
    }
    Ok(())
}

/// A valid snapshot of modest size (kept small so mutations hit every
/// region of the encoding with realistic probability).
fn snapshot_strategy() -> impl Strategy<Value = ContextSnapshot> {
    (
        1usize..5,
        0usize..24,
        proptest::option::of(any::<u64>()),
        any::<u32>(),
    )
        .prop_map(|(n_channels, len, vehicle_id, seed)| {
            let mut geo = GeoTrajectory::new();
            let mut gsm = GsmTrajectory::new(n_channels);
            let mut h = seed as u64;
            let mut next = move || {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h
            };
            for i in 0..len {
                geo.push(GeoSample {
                    heading_rad: ((next() % 6283) as f64 / 1000.0) - std::f64::consts::PI,
                    timestamp_s: 2e5 + i as f64 * 0.41,
                });
                gsm.push(&PowerVector::from_fn(n_channels, |_| {
                    (next() % 5 != 0).then(|| -108.0 + (next() % 1100) as f32 / 10.0)
                }));
            }
            ContextSnapshot {
                vehicle_id,
                geo,
                gsm,
                trace: None,
            }
        })
}

proptest! {
    // Surface 1: completely arbitrary bytes.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(snap) = decode_snapshot(&data) {
            assert_consistent(&snap)?;
        }
    }

    // Surface 2: a valid magic + arbitrary tail, reaching the parse
    // branches behind the header check.
    #[test]
    fn valid_magic_with_arbitrary_tail_never_panics(
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut wire = MAGIC.to_vec();
        wire.extend_from_slice(&tail);
        if let Ok(snap) = decode_snapshot(&wire) {
            assert_consistent(&snap)?;
        }
    }

    // Surface 3a: bit flips anywhere in a valid encoding — the exact
    // damage the fault model's `corrupt` knob inflicts.
    #[test]
    fn bit_flipped_encodings_never_panic(
        snap in snapshot_strategy(),
        flips in proptest::collection::vec((any::<u16>(), 0u8..8), 1..12),
    ) {
        let mut wire = encode_snapshot(&snap).to_vec();
        for (idx, bit) in flips {
            let i = idx as usize % wire.len();
            wire[i] ^= 1 << bit;
        }
        if let Ok(back) = decode_snapshot(&wire) {
            assert_consistent(&back)?;
        }
    }

    // Surface 3b: whole-byte rewrites (e.g. a hostile sender forging
    // lengths and counts).
    #[test]
    fn byte_rewritten_encodings_never_panic(
        snap in snapshot_strategy(),
        writes in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut wire = encode_snapshot(&snap).to_vec();
        for (idx, val) in writes {
            let i = idx as usize % wire.len();
            wire[i] = val;
        }
        if let Ok(back) = decode_snapshot(&wire) {
            assert_consistent(&back)?;
        }
    }

    // Surface 3c: truncation to any prefix plus optional trailing
    // garbage — what the fault model's `truncate` knob and WSM
    // reassembly bugs would produce.
    #[test]
    fn truncated_and_extended_encodings_never_panic(
        snap in snapshot_strategy(),
        keep in any::<u16>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let wire = encode_snapshot(&snap);
        let mut cut = wire[..keep as usize % (wire.len() + 1)].to_vec();
        cut.extend_from_slice(&garbage);
        if let Ok(back) = decode_snapshot(&cut) {
            assert_consistent(&back)?;
        }
    }

    // Round trip: an undamaged encoding decodes back to the same
    // structure, and the fallible encoder agrees bit-for-bit with the
    // infallible one on aligned snapshots.
    #[test]
    fn undamaged_roundtrip_is_lossless_in_structure(snap in snapshot_strategy()) {
        let wire = encode_snapshot(&snap);
        prop_assert_eq!(
            try_encode_snapshot(&snap).expect("aligned snapshot must encode"),
            wire.clone()
        );
        let back = decode_snapshot(&wire).expect("own encoding must decode");
        assert_consistent(&back)?;
        prop_assert_eq!(back.vehicle_id, snap.vehicle_id);
        prop_assert_eq!(back.len(), snap.len());
        prop_assert_eq!(back.gsm.n_channels(), snap.gsm.n_channels());
    }
}

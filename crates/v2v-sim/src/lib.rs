//! # v2v-sim
//!
//! DSRC/WAVE (IEEE 802.11p + 1609) exchange substrate for RUPS (§V-B).
//!
//! RUPS vehicles broadcast their recent journey context to neighbours over
//! WAVE Short Messages. The paper's arithmetic: a 1 km GSM-aware trajectory
//! serialises to ≈182 KB, a WSM carries at most 1400 payload bytes with
//! ≈4 ms per-packet latency, so a full context exchange takes ≈130 packets
//! ≈ 0.52 s — which dominates the ~1.2 ms SYN-search compute time.
//!
//! * [`codec`] — compact binary encoding of
//!   [`rups_core::pipeline::ContextSnapshot`] (quantised RSSI, ~200 B per
//!   metre of context, matching the paper's 182 KB/km figure).
//! * [`wsm`] — WSM fragmentation and latency model.
//! * [`link`] — an in-process broadcast medium (crossbeam channels) with
//!   deterministic fault injection and time-aware delivery, for
//!   multi-vehicle integration tests and examples.
//! * [`fault`] — the channel fault model: Gilbert–Elliott burst loss,
//!   duplication, reordering, payload truncation/corruption, jitter.
//! * [`tracking`] — the §V-B scalability optimisation: full context first,
//!   small incremental tail updates while tracking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod fault;
pub mod link;
pub mod tracking;
pub mod wsm;

pub use codec::{decode_snapshot, encode_snapshot, try_encode_snapshot, CodecError};
pub use fault::FaultConfig;
pub use link::{LinkStats, V2vLink};
pub use tracking::{TrackingSession, Update};
pub use wsm::{exchange_time_s, fragment, WsmConfig};

//! An in-process broadcast medium for multi-vehicle tests and examples.
//!
//! Models the shared DSRC channel: every registered node hears every other
//! node's broadcasts, subject to the configured [`FaultConfig`] (bursty
//! Gilbert–Elliott loss, duplication, reordering, payload damage, jitter)
//! and the WSM latency model. Delivery is via crossbeam channels so vehicle
//! tasks can run on separate threads; the registry is guarded by a
//! `parking_lot` mutex.
//!
//! Delivery is **time-aware**: [`Endpoint::poll_until`] only surfaces
//! messages whose arrival time has passed, so a simulation stepping through
//! time never reads a payload that is still "on the air". The legacy
//! [`Endpoint::poll`] drains everything regardless of arrival time and is
//! kept for tests and threaded examples that do not track simulated time.

use crate::fault::{ChannelState, FaultConfig};
use crate::wsm::{exchange_time_s, WsmConfig};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rups_obs::{Counter, Histogram, Registry, SpanRecorder, TraceContext};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message delivered to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Sending node id.
    pub from: u64,
    /// Simulated time at which the message finished arriving, seconds
    /// (send time plus the WSM transfer latency for its size, plus any
    /// fault-injected jitter or reordering delay).
    pub arrival_s: f64,
    /// Message payload (possibly truncated or bit-corrupted when the link
    /// injects payload faults — receivers must validate what they decode).
    pub payload: Bytes,
}

/// Counters of everything the fault layer did, for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// `(message, receiver)` pairs offered to the fault layer.
    pub offered: u64,
    /// Pairs actually delivered (including duplicates).
    pub delivered: u64,
    /// Pairs dropped by the Gilbert–Elliott loss draw.
    pub dropped: u64,
    /// Extra copies delivered by the duplication fault.
    pub duplicated: u64,
    /// Deliveries held back by the reordering fault.
    pub reordered: u64,
    /// Deliveries with a truncated payload.
    pub truncated: u64,
    /// Deliveries with flipped payload bits.
    pub corrupted: u64,
}

impl LinkStats {
    /// Field-wise `self − earlier` (saturating), for per-epoch deltas from
    /// two cumulative snapshots.
    pub fn delta(&self, earlier: &LinkStats) -> LinkStats {
        LinkStats {
            offered: self.offered.saturating_sub(earlier.offered),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            duplicated: self.duplicated.saturating_sub(earlier.duplicated),
            reordered: self.reordered.saturating_sub(earlier.reordered),
            truncated: self.truncated.saturating_sub(earlier.truncated),
            corrupted: self.corrupted.saturating_sub(earlier.corrupted),
        }
    }

    /// Fraction of offered `(message, receiver)` pairs actually delivered
    /// (0.0 when nothing was offered; can exceed 1.0 under duplication).
    pub fn delivery_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// Pre-registered registry handles for the fault-layer counters
/// (`rups_v2v_link_*`) plus the broadcast payload-size histogram.
struct LinkMetrics {
    offered: Counter,
    delivered: Counter,
    dropped: Counter,
    duplicated: Counter,
    reordered: Counter,
    truncated: Counter,
    corrupted: Counter,
    payload_bytes: Histogram,
}

impl LinkMetrics {
    fn register(reg: &Registry) -> Self {
        Self {
            offered: reg.counter("rups_v2v_link_offered"),
            delivered: reg.counter("rups_v2v_link_delivered"),
            dropped: reg.counter("rups_v2v_link_dropped"),
            duplicated: reg.counter("rups_v2v_link_duplicated"),
            reordered: reg.counter("rups_v2v_link_reordered"),
            truncated: reg.counter("rups_v2v_link_truncated"),
            corrupted: reg.counter("rups_v2v_link_corrupted"),
            payload_bytes: reg.histogram("rups_v2v_link_payload_bytes"),
        }
    }
}

struct Inner {
    peers: Mutex<HashMap<u64, Sender<Delivery>>>,
    /// Per-receiver Gilbert–Elliott channel state.
    states: Mutex<HashMap<u64, ChannelState>>,
    cfg: WsmConfig,
    /// Link-wide fault model; mutable at runtime via
    /// [`V2vLink::set_faults`] so harnesses can stage degradations
    /// mid-scenario.
    faults: Mutex<FaultConfig>,
    /// Per-receiver fault overrides (targeted degradations), keyed by
    /// receiver node id; a receiver with no entry uses the link-wide model.
    overrides: Mutex<HashMap<u64, FaultConfig>>,
    seq: AtomicU64,
    seed: u64,
    registry: Arc<Registry>,
    stats: LinkMetrics,
    /// Span sink for fault events, when attached.
    spans: Option<Arc<SpanRecorder>>,
}

/// Handle to the shared broadcast medium.
#[derive(Clone)]
pub struct V2vLink {
    inner: Arc<Inner>,
}

/// A node's endpoint on the link.
pub struct Endpoint {
    /// This node's id.
    pub id: u64,
    link: V2vLink,
    rx: Receiver<Delivery>,
    /// Messages received off the channel but not yet surfaced because
    /// their arrival time lies in the future (time-aware delivery).
    pending: RefCell<Vec<Delivery>>,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic uniform draw in `[0, 1)` for a `(seed, message,
/// receiver, purpose)` tuple.
fn draw(seed: u64, msg_seq: u64, id: u64, salt: u64) -> f64 {
    mix(seed ^ msg_seq.wrapping_mul(31) ^ id ^ salt.wrapping_mul(0x9E37_79B9)) as f64
        / u64::MAX as f64
}

impl V2vLink {
    /// A lossless, fault-free link with default WSM parameters.
    pub fn new() -> Self {
        Self::with_faults(FaultConfig::ideal(), 0)
    }

    /// A link dropping each (message, receiver) pair i.i.d. with
    /// probability `loss` (deterministic in `seed`). Kept for callers that
    /// predate the fault layer; equivalent to
    /// `with_faults(FaultConfig::iid_loss(loss), seed)`.
    pub fn with_loss(loss: f64, seed: u64) -> Self {
        Self::with_faults(FaultConfig::iid_loss(loss), seed)
    }

    /// A link with the full fault model (deterministic in `seed`).
    ///
    /// # Panics
    /// Panics when the fault configuration is invalid (probabilities
    /// outside `[0, 1]`, negative delays).
    pub fn with_faults(faults: FaultConfig, seed: u64) -> Self {
        Self::with_faults_in(faults, seed, Arc::new(Registry::new()))
    }

    /// A link recording its fault-layer counters into the given shared
    /// registry (under `rups_v2v_link_*`), so node and link metrics can be
    /// exported as one snapshot.
    ///
    /// # Panics
    /// Panics when the fault configuration is invalid.
    pub fn with_faults_in(faults: FaultConfig, seed: u64, registry: Arc<Registry>) -> Self {
        faults.validate().expect("invalid fault configuration");
        let stats = LinkMetrics::register(&registry);
        V2vLink {
            inner: Arc::new(Inner {
                peers: Mutex::new(HashMap::new()),
                states: Mutex::new(HashMap::new()),
                cfg: WsmConfig::default(),
                faults: Mutex::new(faults),
                overrides: Mutex::new(HashMap::new()),
                seq: AtomicU64::new(0),
                seed,
                registry,
                stats,
                spans: None,
            }),
        }
    }

    /// Records fault events (`link.drop` / `link.duplicate` /
    /// `link.reorder` / `link.truncate` / `link.corrupt`) into `spans`.
    /// Only callable before the link handle is shared (cloned or joined).
    ///
    /// # Panics
    /// Panics when the link is already shared.
    pub fn with_spans(mut self, spans: Arc<SpanRecorder>) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("attach spans before sharing the link")
            .spans = Some(spans);
        self
    }

    /// The active link-wide fault configuration.
    pub fn faults(&self) -> FaultConfig {
        *self.inner.faults.lock()
    }

    /// Replaces the link-wide fault model mid-run. Messages already in
    /// flight are unaffected; the next broadcast sees the new model.
    /// Gilbert–Elliott channel states persist across the swap.
    ///
    /// # Errors
    /// Returns the validation message when the configuration is invalid
    /// (the active model is left unchanged).
    pub fn set_faults(&self, faults: FaultConfig) -> Result<(), String> {
        faults.validate()?;
        *self.inner.faults.lock() = faults;
        Ok(())
    }

    /// Installs (or with `None` clears) a fault override for one receiver,
    /// leaving every other receiver on the link-wide model — a targeted
    /// degradation, e.g. burst loss towards a single vehicle.
    ///
    /// # Errors
    /// Returns the validation message when the configuration is invalid
    /// (existing overrides are left unchanged).
    pub fn set_receiver_faults(
        &self,
        id: u64,
        faults: Option<FaultConfig>,
    ) -> Result<(), String> {
        match faults {
            Some(f) => {
                f.validate()?;
                self.inner.overrides.lock().insert(id, f);
            }
            None => {
                self.inner.overrides.lock().remove(&id);
            }
        }
        Ok(())
    }

    /// The metrics registry this link records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Snapshot of the fault-layer counters, read straight off the
    /// registry atomics.
    pub fn stats(&self) -> LinkStats {
        let s = &self.inner.stats;
        LinkStats {
            offered: s.offered.get(),
            delivered: s.delivered.get(),
            dropped: s.dropped.get(),
            duplicated: s.duplicated.get(),
            reordered: s.reordered.get(),
            truncated: s.truncated.get(),
            corrupted: s.corrupted.get(),
        }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    /// Panics when the id is already registered.
    pub fn join(&self, id: u64) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.inner.peers.lock().insert(id, tx);
        assert!(prev.is_none(), "node id {id} already registered");
        Endpoint {
            id,
            link: self.clone(),
            rx,
            pending: RefCell::new(Vec::new()),
        }
    }

    /// Number of registered nodes.
    pub fn peer_count(&self) -> usize {
        self.inner.peers.lock().len()
    }

    /// Applies the payload faults (truncation, bit flips) for one
    /// delivery; returns the possibly-damaged payload.
    fn damage_payload(
        &self,
        f: &FaultConfig,
        payload: &Bytes,
        msg_seq: u64,
        id: u64,
        copy: u64,
        trace: Option<TraceContext>,
    ) -> Bytes {
        let stats = &self.inner.stats;
        let mut damaged: Option<Vec<u8>> = None;
        if !payload.is_empty() && draw(self.inner.seed, msg_seq, id, 0x71 ^ copy) < f.truncate {
            // Keep a strict prefix: at least 0, at most len-1 bytes.
            let keep =
                (draw(self.inner.seed, msg_seq, id, 0x72 ^ copy) * payload.len() as f64) as usize;
            damaged = Some(payload[..keep.min(payload.len() - 1)].to_vec());
            stats.truncated.inc();
            if let Some(s) = &self.inner.spans {
                match trace {
                    Some(t) => s.event_args("link.truncate", t.args()),
                    None => s.event("link.truncate"),
                }
            }
        }
        let corrupt_len = damaged.as_ref().map_or(payload.len(), Vec::len);
        if corrupt_len > 0 && draw(self.inner.seed, msg_seq, id, 0x73 ^ copy) < f.corrupt {
            let buf = damaged.get_or_insert_with(|| payload.to_vec());
            for k in 0..f.corrupt_bits.max(1) as u64 {
                let bit = draw(self.inner.seed, msg_seq, id, 0x74 ^ copy ^ (k << 8));
                let pos = (bit * (buf.len() * 8) as f64) as usize;
                let byte = (pos / 8).min(buf.len() - 1);
                buf[byte] ^= 1 << (pos % 8);
            }
            stats.corrupted.inc();
            if let Some(s) = &self.inner.spans {
                match trace {
                    Some(t) => s.event_args("link.corrupt", t.args()),
                    None => s.event("link.corrupt"),
                }
            }
        }
        match damaged {
            Some(v) => Bytes::from(v),
            None => payload.clone(),
        }
    }

    fn broadcast(
        &self,
        from: u64,
        now_s: f64,
        payload: Bytes,
        trace: Option<TraceContext>,
    ) -> f64 {
        let latency = exchange_time_s(payload.len(), &self.inner.cfg);
        let arrival_s = now_s + latency;
        let msg_seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let base = *self.inner.faults.lock();
        let stats = &self.inner.stats;
        stats.payload_bytes.record(payload.len() as u64);
        let peers = self.inner.peers.lock();
        for (&id, tx) in peers.iter() {
            if id == from {
                continue;
            }
            let f = &self
                .inner
                .overrides
                .lock()
                .get(&id)
                .copied()
                .unwrap_or(base);
            stats.offered.inc();

            // Advance this receiver's Gilbert–Elliott chain one step, then
            // draw the per-state loss decision.
            let loss = {
                let mut states = self.inner.states.lock();
                let st = states.entry(id).or_default();
                let flip = draw(self.inner.seed, msg_seq, id, 0x01);
                if st.bad {
                    if flip < f.p_bad_to_good {
                        st.bad = false;
                    }
                } else if flip < f.p_good_to_bad {
                    st.bad = true;
                }
                if st.bad {
                    f.loss_bad
                } else {
                    f.loss_good
                }
            };
            if draw(self.inner.seed, msg_seq, id, 0x02) < loss {
                stats.dropped.inc();
                if let Some(s) = &self.inner.spans {
                    match trace {
                        Some(t) => s.event_args("link.drop", t.args()),
                        None => s.event("link.drop"),
                    }
                }
                continue;
            }

            // Number of copies: 1, plus one more under the duplication
            // fault. Each copy gets independent payload-damage and timing
            // draws, like genuinely re-received frames would.
            let copies = 1 + u64::from(draw(self.inner.seed, msg_seq, id, 0x03) < f.duplicate);
            for copy in 0..copies {
                let mut when =
                    arrival_s + draw(self.inner.seed, msg_seq, id, 0x04 ^ copy) * f.jitter_s;
                if draw(self.inner.seed, msg_seq, id, 0x05 ^ copy) < f.reorder {
                    when += f.reorder_delay_s;
                    stats.reordered.inc();
                    if let Some(s) = &self.inner.spans {
                        match trace {
                            Some(t) => s.event_args("link.reorder", t.args()),
                            None => s.event("link.reorder"),
                        }
                    }
                }
                let body = self.damage_payload(f, &payload, msg_seq, id, copy, trace);
                if copy > 0 {
                    stats.duplicated.inc();
                    if let Some(s) = &self.inner.spans {
                        match trace {
                            Some(t) => s.event_args("link.duplicate", t.args()),
                            None => s.event("link.duplicate"),
                        }
                    }
                }
                stats.delivered.inc();
                let _ = tx.send(Delivery {
                    from,
                    arrival_s: when,
                    payload: body,
                });
            }
        }
        arrival_s
    }
}

impl Default for V2vLink {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint {
    /// Broadcasts a payload at simulated time `now_s`; returns the nominal
    /// arrival time at the receivers (send time + WSM transfer latency,
    /// before any fault-injected jitter).
    pub fn broadcast(&self, now_s: f64, payload: Bytes) -> f64 {
        self.link.broadcast(self.id, now_s, payload, None)
    }

    /// [`broadcast`](Self::broadcast) for a payload carrying a
    /// [`TraceContext`]: the link's fault events (`link.drop`,
    /// `link.corrupt`, …) for this transmission join the payload's causal
    /// trace, so a merged fleet trace shows *which* beacon the channel
    /// damaged. The payload bytes are untouched — the trace rides the
    /// encoded snapshot itself.
    pub fn broadcast_traced(&self, now_s: f64, payload: Bytes, trace: TraceContext) -> f64 {
        self.link.broadcast(self.id, now_s, payload, Some(trace))
    }

    /// Moves everything waiting on the channel into the pending buffer and
    /// sorts it by arrival time (stable, so equal arrivals keep send
    /// order).
    fn buffer_incoming(&self) {
        let mut pending = self.pending.borrow_mut();
        let before = pending.len();
        pending.extend(self.rx.try_iter());
        if pending.len() > before {
            pending.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        }
    }

    /// Surfaces every message whose arrival time has passed at simulated
    /// time `now_s`, in arrival order. Messages still "on the air" stay
    /// buffered for a later poll — this is the time-aware replacement for
    /// [`Endpoint::poll`], which would let a simulation look into the
    /// future.
    pub fn poll_until(&self, now_s: f64) -> Vec<Delivery> {
        self.buffer_incoming();
        let mut pending = self.pending.borrow_mut();
        let k = pending.partition_point(|d| d.arrival_s <= now_s);
        pending.drain(..k).collect()
    }

    /// Drains every message received so far, in arrival order, regardless
    /// of whether its arrival time has passed. Prefer
    /// [`Endpoint::poll_until`] in time-stepped simulations; `poll` is for
    /// threaded examples and tests that do not track simulated time.
    pub fn poll(&self) -> Vec<Delivery> {
        self.buffer_incoming();
        self.pending.borrow_mut().drain(..).collect()
    }

    /// Messages buffered but not yet surfaced (arrival time in the
    /// future at the last [`Endpoint::poll_until`]).
    pub fn pending_len(&self) -> usize {
        self.buffer_incoming();
        self.pending.borrow().len()
    }

    /// Blocks until a message arrives (for threaded examples/tests).
    /// Buffered messages are surfaced first, earliest arrival first.
    pub fn recv_blocking(&self) -> Option<Delivery> {
        {
            let mut pending = self.pending.borrow_mut();
            if !pending.is_empty() {
                return Some(pending.remove(0));
            }
        }
        self.rx.recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.link.inner.peers.lock().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        let c = link.join(3);
        assert_eq!(link.peer_count(), 3);
        let arrival = a.broadcast(10.0, Bytes::from_static(b"ctx"));
        assert!(arrival > 10.0);
        assert!(a.poll().is_empty(), "sender must not hear itself");
        let db = b.poll();
        let dc = c.poll();
        assert_eq!(db.len(), 1);
        assert_eq!(dc.len(), 1);
        assert_eq!(db[0].from, 1);
        assert_eq!(db[0].payload, Bytes::from_static(b"ctx"));
        assert_eq!(db[0].arrival_s, arrival);
    }

    #[test]
    fn arrival_time_includes_wsm_latency() {
        let link = V2vLink::new();
        let a = link.join(1);
        let _b = link.join(2);
        // 3000 bytes → 3 packets → 12 ms.
        let arrival = a.broadcast(0.0, Bytes::from(vec![0u8; 3000]));
        assert!((arrival - 0.012).abs() < 1e-9);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = |seed: u64| {
            let link = V2vLink::with_loss(0.5, seed);
            let a = link.join(1);
            let b = link.join(2);
            for i in 0..200 {
                a.broadcast(i as f64, Bytes::from_static(b"x"));
            }
            b.poll().len()
        };
        let n1 = run(7);
        let n2 = run(7);
        assert_eq!(n1, n2, "loss must be deterministic");
        assert!(n1 > 60 && n1 < 140, "≈50 % of 200 expected, got {n1}");
    }

    #[test]
    fn poll_until_respects_arrival_time() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        // Two messages in flight: one arriving at ~1.004, one at ~5.004.
        a.broadcast(1.0, Bytes::from_static(b"early"));
        a.broadcast(5.0, Bytes::from_static(b"late"));
        assert!(b.poll_until(0.5).is_empty(), "nothing has arrived yet");
        assert_eq!(b.pending_len(), 2);
        let first = b.poll_until(2.0);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].payload, Bytes::from_static(b"early"));
        assert_eq!(b.pending_len(), 1);
        // The later message only surfaces once time has passed it.
        assert!(b.poll_until(4.9).is_empty());
        let second = b.poll_until(6.0);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].payload, Bytes::from_static(b"late"));
        assert_eq!(b.pending_len(), 0);
    }

    #[test]
    fn reordering_inverts_send_order_but_not_arrival_order() {
        let faults = FaultConfig {
            reorder: 0.5,
            reorder_delay_s: 0.05,
            ..FaultConfig::ideal()
        };
        let link = V2vLink::with_faults(faults, 3);
        let a = link.join(1);
        let b = link.join(2);
        // Closely-spaced sends: a held-back message is overtaken by the
        // next few.
        for i in 0..50u8 {
            a.broadcast(i as f64 * 0.001, Bytes::from(vec![i]));
        }
        let all = b.poll_until(100.0);
        assert_eq!(all.len(), 50);
        assert!(
            all.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "poll_until must surface messages in arrival order"
        );
        let send_order: Vec<u8> = all.iter().map(|d| d.payload[0]).collect();
        assert!(
            send_order.windows(2).any(|w| w[0] > w[1]),
            "expected at least one overtaken message, got {send_order:?}"
        );
    }

    #[test]
    fn bursty_loss_is_bursty_and_deterministic() {
        // A chain that spends ~half its time in a bad state losing 90 %.
        let faults = FaultConfig::bursty(0.2, 0.2, 0.9);
        let run = |seed: u64| {
            let link = V2vLink::with_faults(faults, seed);
            let a = link.join(1);
            let b = link.join(2);
            let mut received = Vec::new();
            for i in 0..400 {
                a.broadcast(i as f64, Bytes::from_static(b"x"));
                received.push(!b.poll_until(i as f64 + 1.0).is_empty());
            }
            received
        };
        let r1 = run(11);
        let r2 = run(11);
        assert_eq!(r1, r2, "fault injection must be deterministic");
        let delivered = r1.iter().filter(|&&x| x).count();
        let expected = (1.0 - faults.expected_loss()) * 400.0;
        assert!(
            (delivered as f64 - expected).abs() < 80.0,
            "delivered {delivered}, expected ≈{expected}"
        );
        // Burstiness: consecutive losses must be far likelier than under
        // i.i.d. loss at the same rate. Count loss runs of length ≥ 3.
        let mut run_len = 0usize;
        let mut long_runs = 0usize;
        for &ok in &r1 {
            if ok {
                run_len = 0;
            } else {
                run_len += 1;
                if run_len == 3 {
                    long_runs += 1;
                }
            }
        }
        assert!(
            long_runs >= 5,
            "expected loss bursts, got {long_runs} runs ≥ 3"
        );
    }

    #[test]
    fn duplication_and_damage_counters() {
        let faults = FaultConfig {
            duplicate: 0.5,
            truncate: 0.3,
            corrupt: 0.3,
            ..FaultConfig::ideal()
        };
        let link = V2vLink::with_faults(faults, 99);
        let a = link.join(1);
        let b = link.join(2);
        for i in 0..200 {
            a.broadcast(i as f64, Bytes::from(vec![0xABu8; 64]));
        }
        let got = b.poll_until(1e9);
        let stats = link.stats();
        assert_eq!(stats.offered, 200);
        assert_eq!(stats.delivered as usize, got.len());
        assert!(got.len() > 200, "duplicates must inflate delivery count");
        assert!(stats.duplicated > 50, "stats {stats:?}");
        assert!(stats.truncated > 20, "stats {stats:?}");
        assert!(stats.corrupted > 20, "stats {stats:?}");
        // Damaged payloads really differ from the original.
        let pristine = Bytes::from(vec![0xABu8; 64]);
        let damaged = got.iter().filter(|d| d.payload != pristine).count();
        assert!(damaged > 20, "only {damaged} damaged payloads");
        // Truncation only ever shortens; nothing grows past the original.
        assert!(got.iter().all(|d| d.payload.len() <= 64));
        assert!(got.iter().any(|d| d.payload.len() < 64));
    }

    #[test]
    fn shared_registry_and_spans_see_fault_events() {
        let reg = Arc::new(Registry::new());
        let spans = Arc::new(SpanRecorder::new(256));
        let faults = FaultConfig {
            duplicate: 0.4,
            truncate: 0.2,
            reorder: 0.2,
            reorder_delay_s: 0.05,
            ..FaultConfig::iid_loss(0.3)
        };
        let link =
            V2vLink::with_faults_in(faults, 42, Arc::clone(&reg)).with_spans(Arc::clone(&spans));
        assert!(Arc::ptr_eq(link.registry(), &reg));
        let a = link.join(1);
        let b = link.join(2);
        let before = link.stats();
        for i in 0..150 {
            a.broadcast(i as f64, Bytes::from(vec![0x5Au8; 96]));
        }
        let _ = b.poll_until(1e9);
        let snap = reg.snapshot();
        let stats = link.stats();
        assert_eq!(snap.counter("rups_v2v_link_offered"), Some(stats.offered));
        assert_eq!(snap.counter("rups_v2v_link_dropped"), Some(stats.dropped));
        assert_eq!(
            snap.counter("rups_v2v_link_delivered"),
            Some(stats.delivered)
        );
        assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.truncated > 0);
        // Every broadcast records its payload size.
        let h = snap
            .histogram("rups_v2v_link_payload_bytes")
            .expect("payload histogram registered");
        assert_eq!(h.count, 150);
        // Delta brackets the burst exactly.
        let d = stats.delta(&before);
        assert_eq!(d.offered, 150);
        assert!(d.delivery_rate() > 0.0);
        if cfg!(feature = "obs") {
            let names: Vec<&str> = spans.recent().iter().map(|r| r.name).collect();
            assert!(names.contains(&"link.drop"));
            assert!(names.contains(&"link.duplicate"));
            assert!(names.contains(&"link.truncate"));
        }
    }

    #[test]
    fn set_faults_swaps_the_model_mid_run() {
        let link = V2vLink::with_faults(FaultConfig::ideal(), 21);
        let a = link.join(1);
        let b = link.join(2);
        for i in 0..100 {
            a.broadcast(i as f64, Bytes::from_static(b"x"));
        }
        assert_eq!(b.poll_until(1e9).len(), 100, "ideal phase is lossless");
        // Stage a total blackout, then recover.
        link.set_faults(FaultConfig::iid_loss(1.0)).unwrap();
        assert_eq!(link.faults().loss_good, 1.0);
        for i in 100..200 {
            a.broadcast(i as f64, Bytes::from_static(b"x"));
        }
        assert!(b.poll_until(1e9).is_empty(), "blackout phase drops all");
        link.set_faults(FaultConfig::ideal()).unwrap();
        for i in 200..300 {
            a.broadcast(i as f64, Bytes::from_static(b"x"));
        }
        assert_eq!(b.poll_until(1e9).len(), 100, "recovery is lossless");
        // An invalid swap is rejected and leaves the model untouched.
        let bad = FaultConfig {
            corrupt: 2.0,
            ..FaultConfig::ideal()
        };
        assert!(link.set_faults(bad).is_err());
        assert_eq!(link.faults(), FaultConfig::ideal());
    }

    #[test]
    fn receiver_override_targets_one_node() {
        let link = V2vLink::with_faults(FaultConfig::ideal(), 8);
        let a = link.join(1);
        let b = link.join(2);
        let c = link.join(3);
        link.set_receiver_faults(2, Some(FaultConfig::iid_loss(1.0)))
            .unwrap();
        for i in 0..80 {
            a.broadcast(i as f64, Bytes::from_static(b"x"));
        }
        assert!(b.poll_until(1e9).is_empty(), "targeted node hears nothing");
        assert_eq!(c.poll_until(1e9).len(), 80, "bystander unaffected");
        // Clearing the override restores the link-wide model.
        link.set_receiver_faults(2, None).unwrap();
        for i in 80..120 {
            a.broadcast(i as f64, Bytes::from_static(b"x"));
        }
        assert_eq!(b.poll_until(1e9).len(), 40);
        assert!(link
            .set_receiver_faults(2, Some(FaultConfig {
                truncate: -1.0,
                ..FaultConfig::ideal()
            }))
            .is_err());
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let faults = FaultConfig {
            jitter_s: 0.5,
            ..FaultConfig::ideal()
        };
        let link = V2vLink::with_faults(faults, 5);
        let a = link.join(1);
        let b = link.join(2);
        for _ in 0..50 {
            a.broadcast(0.0, Bytes::from_static(b"x"));
        }
        let got = b.poll_until(10.0);
        assert_eq!(got.len(), 50);
        let min = got.iter().map(|d| d.arrival_s).fold(f64::MAX, f64::min);
        let max = got.iter().map(|d| d.arrival_s).fold(f64::MIN, f64::max);
        assert!(max - min > 0.1, "jitter spread {}", max - min);
        assert!(max < 0.004 + 0.5 + 1e-9, "jitter bounded by jitter_s");
    }

    #[test]
    #[should_panic(expected = "invalid fault configuration")]
    fn invalid_fault_config_rejected() {
        let _ = V2vLink::with_faults(
            FaultConfig {
                corrupt: 2.0,
                ..FaultConfig::ideal()
            },
            0,
        );
    }

    #[test]
    fn departed_nodes_stop_receiving() {
        let link = V2vLink::new();
        let a = link.join(1);
        {
            let _b = link.join(2);
        } // b drops here
        assert_eq!(link.peer_count(), 1);
        a.broadcast(0.0, Bytes::from_static(b"x"));
        // No panic, nothing delivered anywhere.
        assert!(a.poll().is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_ids_rejected() {
        let link = V2vLink::new();
        let _a = link.join(1);
        let _dup = link.join(1);
    }

    #[test]
    fn threaded_exchange() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        let handle = std::thread::spawn(move || {
            let d = b.recv_blocking().expect("delivery");
            (d.from, d.payload.len())
        });
        a.broadcast(1.0, Bytes::from(vec![7u8; 512]));
        let (from, len) = handle.join().unwrap();
        assert_eq!(from, 1);
        assert_eq!(len, 512);
    }

    #[test]
    fn recv_blocking_surfaces_buffered_first() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        a.broadcast(5.0, Bytes::from_static(b"future"));
        // poll_until buffers the not-yet-arrived message...
        assert!(b.poll_until(0.0).is_empty());
        assert_eq!(b.pending_len(), 1);
        // ...and recv_blocking still hands it out rather than deadlocking.
        let d = b.recv_blocking().unwrap();
        assert_eq!(d.payload, Bytes::from_static(b"future"));
    }
}

//! An in-process broadcast medium for multi-vehicle tests and examples.
//!
//! Models the shared DSRC channel: every registered node hears every other
//! node's broadcasts, subject to deterministic packet loss and the WSM
//! latency model. Delivery is via crossbeam channels so vehicle tasks can
//! run on separate threads; the registry is guarded by a `parking_lot`
//! mutex.

use crate::wsm::{exchange_time_s, WsmConfig};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message delivered to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Sending node id.
    pub from: u64,
    /// Simulated time at which the message finished arriving, seconds
    /// (send time plus the WSM transfer latency for its size).
    pub arrival_s: f64,
    /// Message payload.
    pub payload: Bytes,
}

struct Inner {
    peers: Mutex<HashMap<u64, Sender<Delivery>>>,
    cfg: WsmConfig,
    /// Packet loss probability in [0, 1], applied per (message, receiver).
    loss: f64,
    seq: AtomicU64,
    seed: u64,
}

/// Handle to the shared broadcast medium.
#[derive(Clone)]
pub struct V2vLink {
    inner: Arc<Inner>,
}

/// A node's endpoint on the link.
pub struct Endpoint {
    /// This node's id.
    pub id: u64,
    link: V2vLink,
    rx: Receiver<Delivery>,
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl V2vLink {
    /// A lossless link with default WSM parameters.
    pub fn new() -> Self {
        Self::with_loss(0.0, 0)
    }

    /// A link dropping each (message, receiver) pair with probability
    /// `loss` (deterministic in `seed`).
    pub fn with_loss(loss: f64, seed: u64) -> Self {
        V2vLink {
            inner: Arc::new(Inner {
                peers: Mutex::new(HashMap::new()),
                cfg: WsmConfig::default(),
                loss: loss.clamp(0.0, 1.0),
                seq: AtomicU64::new(0),
                seed,
            }),
        }
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    /// Panics when the id is already registered.
    pub fn join(&self, id: u64) -> Endpoint {
        let (tx, rx) = unbounded();
        let prev = self.inner.peers.lock().insert(id, tx);
        assert!(prev.is_none(), "node id {id} already registered");
        Endpoint {
            id,
            link: self.clone(),
            rx,
        }
    }

    /// Number of registered nodes.
    pub fn peer_count(&self) -> usize {
        self.inner.peers.lock().len()
    }

    fn broadcast(&self, from: u64, now_s: f64, payload: Bytes) -> f64 {
        let latency = exchange_time_s(payload.len(), &self.inner.cfg);
        let arrival_s = now_s + latency;
        let msg_seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let peers = self.inner.peers.lock();
        for (&id, tx) in peers.iter() {
            if id == from {
                continue;
            }
            // Deterministic per-receiver loss decision.
            let draw =
                mix(self.inner.seed ^ msg_seq.wrapping_mul(31) ^ id) as f64 / u64::MAX as f64;
            if draw < self.inner.loss {
                continue;
            }
            let _ = tx.send(Delivery {
                from,
                arrival_s,
                payload: payload.clone(),
            });
        }
        arrival_s
    }
}

impl Default for V2vLink {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint {
    /// Broadcasts a payload at simulated time `now_s`; returns the arrival
    /// time at the receivers (send time + WSM transfer latency).
    pub fn broadcast(&self, now_s: f64, payload: Bytes) -> f64 {
        self.link.broadcast(self.id, now_s, payload)
    }

    /// Drains every message delivered so far.
    pub fn poll(&self) -> Vec<Delivery> {
        self.rx.try_iter().collect()
    }

    /// Blocks until a message arrives (for threaded examples/tests).
    pub fn recv_blocking(&self) -> Option<Delivery> {
        self.rx.recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.link.inner.peers.lock().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        let c = link.join(3);
        assert_eq!(link.peer_count(), 3);
        let arrival = a.broadcast(10.0, Bytes::from_static(b"ctx"));
        assert!(arrival > 10.0);
        assert!(a.poll().is_empty(), "sender must not hear itself");
        let db = b.poll();
        let dc = c.poll();
        assert_eq!(db.len(), 1);
        assert_eq!(dc.len(), 1);
        assert_eq!(db[0].from, 1);
        assert_eq!(db[0].payload, Bytes::from_static(b"ctx"));
        assert_eq!(db[0].arrival_s, arrival);
    }

    #[test]
    fn arrival_time_includes_wsm_latency() {
        let link = V2vLink::new();
        let a = link.join(1);
        let _b = link.join(2);
        // 3000 bytes → 3 packets → 12 ms.
        let arrival = a.broadcast(0.0, Bytes::from(vec![0u8; 3000]));
        assert!((arrival - 0.012).abs() < 1e-9);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let run = |seed: u64| {
            let link = V2vLink::with_loss(0.5, seed);
            let a = link.join(1);
            let b = link.join(2);
            for i in 0..200 {
                a.broadcast(i as f64, Bytes::from_static(b"x"));
            }
            b.poll().len()
        };
        let n1 = run(7);
        let n2 = run(7);
        assert_eq!(n1, n2, "loss must be deterministic");
        assert!(n1 > 60 && n1 < 140, "≈50 % of 200 expected, got {n1}");
    }

    #[test]
    fn departed_nodes_stop_receiving() {
        let link = V2vLink::new();
        let a = link.join(1);
        {
            let _b = link.join(2);
        } // b drops here
        assert_eq!(link.peer_count(), 1);
        a.broadcast(0.0, Bytes::from_static(b"x"));
        // No panic, nothing delivered anywhere.
        assert!(a.poll().is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_ids_rejected() {
        let link = V2vLink::new();
        let _a = link.join(1);
        let _dup = link.join(1);
    }

    #[test]
    fn threaded_exchange() {
        let link = V2vLink::new();
        let a = link.join(1);
        let b = link.join(2);
        let handle = std::thread::spawn(move || {
            let d = b.recv_blocking().expect("delivery");
            (d.from, d.payload.len())
        });
        a.broadcast(1.0, Bytes::from(vec![7u8; 512]));
        let (from, len) = handle.join().unwrap();
        assert_eq!(from, 1);
        assert_eq!(len, 512);
    }
}

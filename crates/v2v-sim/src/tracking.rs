//! Incremental context updates for continuous tracking (§V-B).
//!
//! A tracking application may query a neighbour's distance every 100 ms;
//! re-broadcasting the full 1 km context each time is infeasible (0.5 s per
//! exchange). The paper's remedy: after a SYN point is established, send
//! only the trajectory *tail* accumulated since the last update, and fall
//! back to a full context when the estimated accumulated error exceeds a
//! threshold. [`TrackingSession`] implements that policy on top of the
//! snapshot codec.

use crate::codec::encode_snapshot;
use bytes::Bytes;
use rups_core::pipeline::ContextSnapshot;

/// One update emitted by a tracking session.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// A full context snapshot (establishes or re-establishes the SYN
    /// baseline).
    Full(Bytes),
    /// Only the metres accumulated since the previous update.
    Tail {
        /// Wire-encoded snapshot of the new tail metres.
        payload: Bytes,
        /// Metres of new trajectory contained in the update.
        new_metres: usize,
    },
}

impl Update {
    /// Payload size on the wire, bytes.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Update::Full(b) => b.len(),
            Update::Tail { payload, .. } => payload.len(),
        }
    }
}

/// Sender-side state of the §V-B incremental-update protocol.
#[derive(Debug, Clone)]
pub struct TrackingSession {
    /// Metres of tail growth after which a full refresh is forced (the
    /// "estimated accumulative error is beyond a threshold" rule; dead-
    /// reckoning error grows with distance, so distance is the proxy).
    pub refresh_after_m: usize,
    sent_len: Option<usize>,
    tail_since_full: usize,
    last_timestamp: Option<f64>,
}

impl TrackingSession {
    /// A session that refreshes the full context every `refresh_after_m`
    /// metres of accumulated tail.
    pub fn new(refresh_after_m: usize) -> Self {
        Self {
            refresh_after_m,
            sent_len: None,
            tail_since_full: 0,
            last_timestamp: None,
        }
    }

    /// Computes the next update for the neighbour given our current
    /// snapshot. Returns `None` when nothing new has been recorded since
    /// the last update.
    pub fn next_update(&mut self, snap: &ContextSnapshot) -> Option<Update> {
        let now = snap.geo.latest_timestamp();
        let new_metres = match (self.last_timestamp, now) {
            (Some(prev), Some(_)) => snap
                .geo
                .samples()
                .iter()
                .filter(|s| s.timestamp_s > prev)
                .count(),
            (None, Some(_)) => snap.len(),
            (_, None) => return None,
        };
        if new_metres == 0 {
            return None;
        }
        self.last_timestamp = now;

        let need_full =
            self.sent_len.is_none() || self.tail_since_full + new_metres > self.refresh_after_m;
        if need_full {
            self.sent_len = Some(snap.len());
            self.tail_since_full = 0;
            return Some(Update::Full(encode_snapshot(snap)));
        }
        self.tail_since_full += new_metres;
        self.sent_len = Some(snap.len());
        let tail = ContextSnapshot {
            vehicle_id: snap.vehicle_id,
            geo: snap.geo.tail(new_metres),
            gsm: snap.gsm.tail(new_metres),
            trace: snap.trace,
        };
        Some(Update::Tail {
            payload: encode_snapshot(&tail),
            new_metres,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rups_core::geo::{GeoSample, GeoTrajectory};
    use rups_core::gsm::{GsmTrajectory, PowerVector};

    fn snap(len: usize) -> ContextSnapshot {
        let mut geo = GeoTrajectory::new();
        let mut gsm = GsmTrajectory::new(8);
        for i in 0..len {
            geo.push(GeoSample {
                heading_rad: 0.0,
                timestamp_s: i as f64,
            });
            gsm.push(&PowerVector::from_fn(8, |ch| {
                Some(-60.0 - ch as f32 - i as f32 * 0.1)
            }));
        }
        ContextSnapshot {
            vehicle_id: Some(1),
            geo,
            gsm,
            trace: None,
        }
    }

    #[test]
    fn first_update_is_full() {
        let mut s = TrackingSession::new(100);
        match s.next_update(&snap(500)) {
            Some(Update::Full(b)) => assert!(!b.is_empty()),
            other => panic!("expected full, got {other:?}"),
        }
    }

    #[test]
    fn subsequent_updates_are_small_tails() {
        let mut s = TrackingSession::new(200);
        let full = s.next_update(&snap(500)).unwrap();
        let tail = s.next_update(&snap(510)).unwrap();
        match &tail {
            Update::Tail { new_metres, .. } => assert_eq!(*new_metres, 10),
            other => panic!("expected tail, got {other:?}"),
        }
        assert!(
            tail.wire_bytes() < full.wire_bytes() / 10,
            "tail {} vs full {}",
            tail.wire_bytes(),
            full.wire_bytes()
        );
    }

    #[test]
    fn no_update_when_nothing_new() {
        let mut s = TrackingSession::new(100);
        let context = snap(300);
        assert!(s.next_update(&context).is_some());
        assert!(s.next_update(&context).is_none());
    }

    #[test]
    fn full_refresh_after_threshold() {
        let mut s = TrackingSession::new(50);
        assert!(matches!(s.next_update(&snap(300)), Some(Update::Full(_))));
        // Three 20 m tail updates: 20, 40 → still tails; the third pushes
        // the accumulated tail to 60 > 50 → full refresh.
        assert!(matches!(
            s.next_update(&snap(320)),
            Some(Update::Tail { .. })
        ));
        assert!(matches!(
            s.next_update(&snap(340)),
            Some(Update::Tail { .. })
        ));
        assert!(matches!(s.next_update(&snap(360)), Some(Update::Full(_))));
        // Counter reset: the next small step is a tail again.
        assert!(matches!(
            s.next_update(&snap(370)),
            Some(Update::Tail { .. })
        ));
    }

    #[test]
    fn empty_snapshot_yields_nothing() {
        let mut s = TrackingSession::new(100);
        assert!(s.next_update(&snap(0)).is_none());
    }
}

/// §V-B heavy-traffic policy: "reduce the context scope needed to transfer
/// as the distances between nearby vehicles also shrink when the traffic is
/// heavy". Given the last known gap estimate, suggests how many metres of
/// context a broadcast needs: enough to cover the gap plus a full checking
/// window plus a safety margin, clamped to `[min_m, max_m]`.
pub fn suggested_context_m(
    last_gap_m: f64,
    window_len_m: usize,
    min_m: usize,
    max_m: usize,
) -> usize {
    let need = last_gap_m.abs() + 2.0 * window_len_m as f64 + 30.0;
    (need.ceil() as usize).clamp(min_m, max_m)
}

#[cfg(test)]
mod scope_tests {
    use super::suggested_context_m;

    #[test]
    fn scope_shrinks_with_the_gap() {
        // Dense traffic, 12 m gap: a couple hundred metres suffice.
        let near = suggested_context_m(12.0, 85, 120, 1000);
        assert!(near < 250, "near scope {near}");
        // 200 m gap needs more context than the window alone.
        let far = suggested_context_m(200.0, 85, 120, 1000);
        assert!(far > near);
        assert!(far <= 1000);
        // Clamped at both ends; sign does not matter.
        assert_eq!(suggested_context_m(0.0, 85, 300, 1000), 300);
        assert_eq!(suggested_context_m(5_000.0, 85, 120, 1000), 1000);
        assert_eq!(
            suggested_context_m(-60.0, 85, 120, 1000),
            suggested_context_m(60.0, 85, 120, 1000)
        );
    }

    #[test]
    fn scope_savings_are_real() {
        use crate::codec::encoded_size;
        // At a 15 m urban crawl gap, the scoped transfer is ~4× cheaper
        // than a full 1 km context.
        let scoped = encoded_size(suggested_context_m(15.0, 85, 120, 1000), 194);
        let full = encoded_size(1000, 194);
        assert!(
            full as f64 / scoped as f64 > 3.5,
            "saving {}",
            full as f64 / scoped as f64
        );
    }
}

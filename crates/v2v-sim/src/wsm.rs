//! WAVE Short Message fragmentation and latency model (§V-B).
//!
//! The paper measured an 802.11p link (Arada LocoMate OBUs) carrying WSM
//! packets with a maximum payload of 1400 bytes and an average round-trip
//! time of 4 ms. Exchanging a 1 km journey context (~182 KB) therefore costs
//! about 130 packets ≈ 0.52 s — the dominant term in RUPS's ~0.5 s query
//! response time.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// 802.11p WSM link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsmConfig {
    /// Maximum WSM payload, bytes (§V-B: 1400).
    pub payload_bytes: usize,
    /// Effective per-packet delivery latency, seconds (§V-B: ~4 ms).
    pub per_packet_latency_s: f64,
}

impl Default for WsmConfig {
    fn default() -> Self {
        Self {
            payload_bytes: 1400,
            per_packet_latency_s: 0.004,
        }
    }
}

impl WsmConfig {
    /// Number of packets needed for `total_bytes` of payload.
    pub fn packets_for(&self, total_bytes: usize) -> usize {
        total_bytes.div_ceil(self.payload_bytes)
    }
}

/// Splits a message into WSM-sized fragments (zero-copy slices of the
/// input `Bytes`).
pub fn fragment(data: &Bytes, cfg: &WsmConfig) -> Vec<Bytes> {
    let mut out = Vec::with_capacity(cfg.packets_for(data.len()));
    let mut off = 0;
    while off < data.len() {
        let end = (off + cfg.payload_bytes).min(data.len());
        out.push(data.slice(off..end));
        off = end;
    }
    out
}

/// Reassembles fragments back into one message.
pub fn reassemble(fragments: &[Bytes]) -> Bytes {
    let total: usize = fragments.iter().map(|f| f.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for f in fragments {
        buf.extend_from_slice(f);
    }
    Bytes::from(buf)
}

/// Wall-clock time to transfer `total_bytes` over the link.
pub fn exchange_time_s(total_bytes: usize, cfg: &WsmConfig) -> f64 {
    cfg.packets_for(total_bytes) as f64 * cfg.per_packet_latency_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_holds() {
        // §V-B: 182 KB → ~130 packets → ~0.52 s.
        let cfg = WsmConfig::default();
        let bytes = 182 * 1024;
        let packets = cfg.packets_for(bytes);
        assert!((130..=134).contains(&packets), "packets {packets}");
        let t = exchange_time_s(bytes, &cfg);
        assert!((0.50..=0.55).contains(&t), "exchange time {t}");
    }

    #[test]
    fn fragmentation_roundtrip() {
        let data = Bytes::from(
            (0..10_000u32)
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>(),
        );
        let cfg = WsmConfig::default();
        let frags = fragment(&data, &cfg);
        assert_eq!(frags.len(), cfg.packets_for(data.len()));
        assert!(frags.iter().rev().skip(1).all(|f| f.len() == 1400));
        assert!(frags.last().unwrap().len() <= 1400);
        assert_eq!(reassemble(&frags), data);
    }

    #[test]
    fn empty_and_single_packet_messages() {
        let cfg = WsmConfig::default();
        assert_eq!(fragment(&Bytes::new(), &cfg).len(), 0);
        assert_eq!(exchange_time_s(0, &cfg), 0.0);
        let small = Bytes::from_static(b"hello");
        let frags = fragment(&small, &cfg);
        assert_eq!(frags.len(), 1);
        assert!((exchange_time_s(5, &cfg) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn exchange_time_scales_linearly() {
        let cfg = WsmConfig::default();
        let one_km = exchange_time_s(crate::codec::encoded_size(1000, 194), &cfg);
        let half_km = exchange_time_s(crate::codec::encoded_size(500, 194), &cfg);
        assert!(one_km > 1.8 * half_km && one_km < 2.2 * half_km);
        // A full-band 1 km context exchanges in well under a second.
        assert!(one_km < 1.0, "1 km exchange {one_km} s");
    }
}

//! Channel fault model for the broadcast medium: bursty loss, duplication,
//! reordering, payload damage and latency jitter.
//!
//! The original [`crate::link::V2vLink`] knew a single i.i.d. `loss`
//! probability — an idealisation that real DSRC measurements contradict:
//! 802.11p loss is *bursty* (shadowing by passing trucks, deep urban
//! fades), packets arrive duplicated and out of order, and damaged frames
//! occasionally survive the CRC. [`FaultConfig`] models all of that with a
//! classic **Gilbert–Elliott** two-state channel (a Good/Bad Markov chain
//! with per-state loss rates) plus independent duplication, reordering,
//! truncation, bit-corruption and jitter knobs.
//!
//! Every draw is deterministic in the link seed, the message sequence
//! number and the receiver id, so a faulty scenario replays bit-for-bit.

use serde::{Deserialize, Serialize};

/// Fault parameters of a [`crate::link::V2vLink`].
///
/// All probabilities are per `(message, receiver)` pair and must lie in
/// `[0, 1]`. The default is the ideal channel (no faults at all), so
/// `FaultConfig { corrupt: 0.01, ..FaultConfig::default() }` switches on
/// exactly one impairment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Gilbert–Elliott transition probability Good → Bad, applied once per
    /// received message.
    pub p_good_to_bad: f64,
    /// Gilbert–Elliott transition probability Bad → Good.
    pub p_bad_to_good: f64,
    /// Loss probability while the channel is in the Good state.
    pub loss_good: f64,
    /// Loss probability while the channel is in the Bad state (the burst).
    pub loss_bad: f64,
    /// Probability that a delivered message arrives twice (the duplicate
    /// gets its own jitter draw).
    pub duplicate: f64,
    /// Probability that a delivered message is held back by
    /// [`FaultConfig::reorder_delay_s`], so later messages overtake it
    /// under time-aware delivery ([`crate::link::Endpoint::poll_until`]).
    pub reorder: f64,
    /// Extra latency added to held-back (reordered) messages, seconds.
    pub reorder_delay_s: f64,
    /// Probability that the payload arrives truncated at a random offset.
    pub truncate: f64,
    /// Probability that the payload arrives with flipped bits.
    pub corrupt: f64,
    /// Bits flipped in a corrupted payload (at random positions).
    pub corrupt_bits: usize,
    /// Uniform extra latency in `[0, jitter_s)` added to every delivery.
    pub jitter_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay_s: 0.05,
            truncate: 0.0,
            corrupt: 0.0,
            corrupt_bits: 8,
            jitter_s: 0.0,
        }
    }
}

impl FaultConfig {
    /// The ideal channel: nothing is ever lost, damaged or delayed.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Uniform i.i.d. loss with probability `p` — the legacy
    /// `V2vLink::with_loss` behaviour expressed as a degenerate
    /// Gilbert–Elliott chain (both states lose at the same rate).
    pub fn iid_loss(p: f64) -> Self {
        let p = p.clamp(0.0, 1.0);
        Self {
            loss_good: p,
            loss_bad: p,
            ..Self::default()
        }
    }

    /// A bursty channel: mostly clean in the Good state, losing `loss_bad`
    /// of packets during bursts entered with probability `p_good_to_bad`
    /// and left with probability `p_bad_to_good`.
    pub fn bursty(p_good_to_bad: f64, p_bad_to_good: f64, loss_bad: f64) -> Self {
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad,
            ..Self::default()
        }
    }

    /// Long-run fraction of time the Gilbert–Elliott chain spends in the
    /// Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run expected loss rate of the chain (stationary mixture of the
    /// two per-state loss rates).
    pub fn expected_loss(&self) -> f64 {
        let bad = self.stationary_bad();
        (1.0 - bad) * self.loss_good + bad * self.loss_bad
    }

    /// Validates the configuration; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("truncate", self.truncate),
            ("corrupt", self.corrupt),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must lie in [0, 1], got {p}"));
            }
        }
        for (name, s) in [
            ("reorder_delay_s", self.reorder_delay_s),
            ("jitter_s", self.jitter_s),
        ] {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {s}"));
            }
        }
        if self.corrupt > 0.0 && self.corrupt_bits == 0 {
            return Err("corrupt_bits must be positive when corrupt > 0".into());
        }
        Ok(())
    }
}

/// Per-receiver Gilbert–Elliott channel state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChannelState {
    /// True while the chain sits in the Bad (burst) state.
    pub(crate) bad: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ideal() {
        let f = FaultConfig::default();
        assert_eq!(f.expected_loss(), 0.0);
        assert_eq!(f.stationary_bad(), 0.0);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn iid_loss_matches_both_states() {
        let f = FaultConfig::iid_loss(0.25);
        assert_eq!(f.loss_good, 0.25);
        assert_eq!(f.loss_bad, 0.25);
        assert!((f.expected_loss() - 0.25).abs() < 1e-12);
        // Out-of-range inputs clamp rather than building an invalid config.
        assert_eq!(FaultConfig::iid_loss(7.0).loss_good, 1.0);
    }

    #[test]
    fn stationary_arithmetic() {
        let f = FaultConfig::bursty(0.1, 0.3, 0.8);
        assert!((f.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((f.expected_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_knobs() {
        let bad = FaultConfig {
            corrupt: 1.5,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            jitter_s: f64::NAN,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            corrupt: 0.5,
            corrupt_bits: 0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            reorder_delay_s: -1.0,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}

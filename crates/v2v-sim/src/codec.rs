//! Compact binary codec for journey-context snapshots.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic      u32   "RUPS" (0x53505552)
//! version    u8
//! flags      u8    bit 0: vehicle_id present; bit 1: trace context present
//! n_channels u16
//! len_m      u32
//! vehicle_id u64   (only when flag bit 0)
//! trace      16 B  (only when flag bit 1) — [`TraceContext`] wire form:
//!                  trace_id u64, parent_span u32, sender clock u32
//! t0         f64   timestamp of the first metre mark
//! per metre:
//!   heading  i16   radians × 10⁴ (±π fits in ±31 416)
//!   dt       f32   seconds since t0
//!   rssi     u8 × n_channels   (dBm + 110) × 2, clamped to 0..=254;
//!                              255 = missing channel
//! ```
//!
//! One metre of a 194-channel context costs `2 + 4 + 194 = 200` bytes, so a
//! 1 km context is ≈200 KB — the paper quotes 182 KB for its 115-channel
//! prototype plus geometry, same order (§V-B).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::{GsmTrajectory, PowerVector};
use rups_core::pipeline::ContextSnapshot;
use rups_obs::{Counter, Registry, TraceContext, TRACE_CONTEXT_WIRE_BYTES};

/// Codec magic number ("RUPS" in LE bytes).
pub const MAGIC: u32 = 0x5350_5552;
/// Current codec version.
pub const VERSION: u8 = 1;
/// Flags bit 0: the payload carries a sender vehicle id.
pub const FLAG_VEHICLE_ID: u8 = 0x01;
/// Flags bit 1: the payload carries a piggybacked [`TraceContext`].
///
/// A backward-compatible extension: untraced snapshots encode byte-for-byte
/// as they always did (the bit stays clear), and decoders ignore flag bits
/// they do not know, so pre-extension payloads decode unchanged.
pub const FLAG_TRACE: u8 = 0x02;

/// Decoding/encoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than its headers/payload claim.
    Truncated,
    /// Bad magic number — not a RUPS snapshot.
    BadMagic,
    /// Unsupported codec version.
    BadVersion(u8),
    /// Structurally valid but semantically impossible payload
    /// (e.g. non-finite or regressing metre timestamps).
    Corrupt(&'static str),
    /// A snapshot offered for encoding whose geographical and GSM halves
    /// disagree on length — it does not describe one trajectory.
    Misaligned {
        /// Metres in the geographical half.
        geo: usize,
        /// Metres in the GSM half.
        gsm: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "snapshot payload truncated"),
            CodecError::BadMagic => write!(f, "bad magic: not a RUPS snapshot"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::Corrupt(why) => write!(f, "corrupt snapshot payload: {why}"),
            CodecError::Misaligned { geo, gsm } => write!(
                f,
                "misaligned snapshot: geo half has {geo} m, gsm half {gsm} m"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Quantises an RSSI in dBm to the wire byte (0.5 dB resolution from
/// −110 dBm). `255` encodes a missing measurement.
#[inline]
pub fn quantise_rssi(dbm: f32) -> u8 {
    if dbm.is_nan() {
        return 255;
    }
    (((dbm + 110.0) * 2.0).round().clamp(0.0, 254.0)) as u8
}

/// Inverse of [`quantise_rssi`]; `255` becomes `NaN` (missing).
#[inline]
pub fn dequantise_rssi(q: u8) -> f32 {
    if q == 255 {
        f32::NAN
    } else {
        q as f32 / 2.0 - 110.0
    }
}

/// Serialises a snapshot into its wire form.
///
/// ```
/// use rups_core::geo::{GeoSample, GeoTrajectory};
/// use rups_core::gsm::{GsmTrajectory, PowerVector};
/// use rups_core::pipeline::ContextSnapshot;
/// use v2v_sim::codec::{decode_snapshot, encode_snapshot};
///
/// let mut geo = GeoTrajectory::new();
/// let mut gsm = GsmTrajectory::new(4);
/// for i in 0..10 {
///     geo.push(GeoSample { heading_rad: 0.0, timestamp_s: i as f64 });
///     gsm.push(&PowerVector::from_fn(4, |ch| Some(-70.0 - ch as f32)));
/// }
/// let snap = ContextSnapshot { vehicle_id: Some(7), geo, gsm, trace: None };
/// let wire = encode_snapshot(&snap);
/// let back = decode_snapshot(&wire).unwrap();
/// assert_eq!(back.vehicle_id, Some(7));
/// assert_eq!(back.len(), 10);
/// ```
pub fn encode_snapshot(snap: &ContextSnapshot) -> Bytes {
    let n_channels = snap.gsm.n_channels();
    // Contract for misaligned input: encode the aligned prefix rather than
    // panicking on out-of-bounds indexing mid-encode (a release build used
    // to do exactly that). Callers that must treat misalignment as an
    // error use [`try_encode_snapshot`].
    let len = snap.gsm.len().min(snap.geo.len());
    let mut buf = BytesMut::with_capacity(32 + len * (6 + n_channels));
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    let mut flags = 0u8;
    if snap.vehicle_id.is_some() {
        flags |= FLAG_VEHICLE_ID;
    }
    // A trace is only carried alongside a sender id: the id + the trace's
    // logical clock are what let receivers verify the trace survived the
    // wire (see `decode_snapshot`), so an anonymous traced payload would be
    // unverifiable and is encoded untraced instead.
    if snap.trace.is_some() && snap.vehicle_id.is_some() {
        flags |= FLAG_TRACE;
    }
    buf.put_u8(flags);
    buf.put_u16_le(n_channels as u16);
    buf.put_u32_le(len as u32);
    if let Some(id) = snap.vehicle_id {
        buf.put_u64_le(id);
    }
    if let (Some(trace), true) = (&snap.trace, snap.vehicle_id.is_some()) {
        buf.put_slice(&trace.to_wire());
    }
    let t0 = snap.geo.samples().first().map_or(0.0, |s| s.timestamp_s);
    buf.put_f64_le(t0);
    for i in 0..len {
        let g = snap.geo.samples()[i];
        buf.put_i16_le((g.heading_rad * 1e4).round().clamp(-32768.0, 32767.0) as i16);
        buf.put_f32_le((g.timestamp_s - t0) as f32);
        for ch in 0..n_channels {
            let v = snap.gsm.channel(ch)[i];
            buf.put_u8(quantise_rssi(v));
        }
    }
    buf.freeze()
}

/// Serialises a snapshot, rejecting one whose geo and GSM halves disagree
/// on length instead of silently encoding the aligned prefix (the
/// [`encode_snapshot`] contract).
pub fn try_encode_snapshot(snap: &ContextSnapshot) -> Result<Bytes, CodecError> {
    if snap.geo.len() != snap.gsm.len() {
        return Err(CodecError::Misaligned {
            geo: snap.geo.len(),
            gsm: snap.gsm.len(),
        });
    }
    Ok(encode_snapshot(snap))
}

/// Parses a snapshot from its wire form.
pub fn decode_snapshot(mut data: &[u8]) -> Result<ContextSnapshot, CodecError> {
    if data.remaining() < 12 {
        return Err(CodecError::Truncated);
    }
    if data.get_u32_le() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let flags = data.get_u8();
    let n_channels = data.get_u16_le() as usize;
    let len = data.get_u32_le() as usize;
    if n_channels == 0 && len > 0 {
        return Err(CodecError::Corrupt("zero channels with non-empty context"));
    }
    let vehicle_id = if flags & FLAG_VEHICLE_ID != 0 {
        if data.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Some(data.get_u64_le())
    } else {
        None
    };
    let trace = if flags & FLAG_TRACE != 0 {
        if data.remaining() < TRACE_CONTEXT_WIRE_BYTES {
            return Err(CodecError::Truncated);
        }
        let mut wire = [0u8; TRACE_CONTEXT_WIRE_BYTES];
        data.copy_to_slice(&mut wire);
        let t = TraceContext::from_wire(&wire).ok_or(CodecError::Corrupt("bad trace context"))?;
        // Trace ids are self-verifying: the sender mints them as a pure
        // hash of `(vehicle_id, clock)`, so the receiver recomputes the
        // hash and any bit damage to the id, the clock or the sender id
        // shows up as a mismatch. This is what keeps corrupted beacons
        // from planting orphan trace ids in a merged fleet trace.
        let id = vehicle_id.ok_or(CodecError::Corrupt("traced payload without sender id"))?;
        if TraceContext::root(id, t.clock).trace_id != t.trace_id {
            return Err(CodecError::Corrupt("trace does not match its sender"));
        }
        Some(t)
    } else {
        None
    };
    if data.remaining() < 8 + len * (6 + n_channels) {
        return Err(CodecError::Truncated);
    }
    let t0 = data.get_f64_le();
    let mut geo = GeoTrajectory::with_capacity(len);
    let mut gsm = GsmTrajectory::with_capacity(n_channels, len);
    let mut col = vec![f32::NAN; n_channels];
    if !t0.is_finite() {
        return Err(CodecError::Corrupt("non-finite base timestamp"));
    }
    let mut prev_dt = f64::NEG_INFINITY;
    for _ in 0..len {
        let heading = data.get_i16_le() as f64 / 1e4;
        let dt = data.get_f32_le() as f64;
        // Metre marks are recorded in time order; anything else means the
        // payload bytes do not describe a real trajectory.
        if !dt.is_finite() || dt < prev_dt {
            return Err(CodecError::Corrupt("metre timestamps not non-decreasing"));
        }
        prev_dt = dt;
        geo.push(GeoSample {
            heading_rad: heading,
            timestamp_s: t0 + dt,
        });
        for slot in col.iter_mut() {
            *slot = dequantise_rssi(data.get_u8());
        }
        gsm.push(&PowerVector::from_values(col.clone()));
    }
    Ok(ContextSnapshot {
        vehicle_id,
        geo,
        gsm,
        trace,
    })
}

/// Wire size in bytes of a context of `len_m` metres over `n_channels`
/// channels (with a vehicle id, without a trace context — a traced payload
/// adds [`TRACE_CONTEXT_WIRE_BYTES`]).
pub fn encoded_size(len_m: usize, n_channels: usize) -> usize {
    4 + 1 + 1 + 2 + 4 + 8 + 8 + len_m * (6 + n_channels)
}

/// Counted decode front-end: pre-registered `rups_v2v_codec_*` counters
/// recording how incoming payloads fared against [`decode_snapshot`], so a
/// fault-injected run can report *why* the wire path rejected frames.
#[derive(Debug, Clone)]
pub struct CodecMetrics {
    decode_ok: Counter,
    rejected_truncated: Counter,
    rejected_bad_magic: Counter,
    rejected_bad_version: Counter,
    rejected_corrupt: Counter,
}

impl CodecMetrics {
    /// Registers the codec counters in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            decode_ok: registry.counter("rups_v2v_codec_decode_ok"),
            rejected_truncated: registry.counter("rups_v2v_codec_rejected_truncated"),
            rejected_bad_magic: registry.counter("rups_v2v_codec_rejected_bad_magic"),
            rejected_bad_version: registry.counter("rups_v2v_codec_rejected_bad_version"),
            rejected_corrupt: registry.counter("rups_v2v_codec_rejected_corrupt"),
        }
    }

    /// [`decode_snapshot`] plus outcome accounting.
    pub fn decode(&self, data: &[u8]) -> Result<ContextSnapshot, CodecError> {
        let out = decode_snapshot(data);
        match &out {
            Ok(_) => self.decode_ok.inc(),
            Err(CodecError::Truncated) => self.rejected_truncated.inc(),
            Err(CodecError::BadMagic) => self.rejected_bad_magic.inc(),
            Err(CodecError::BadVersion(_)) => self.rejected_bad_version.inc(),
            Err(CodecError::Corrupt(_)) => self.rejected_corrupt.inc(),
            // decode never reports Misaligned (an encode-side error).
            Err(CodecError::Misaligned { .. }) => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(len: usize, n_channels: usize, with_id: bool) -> ContextSnapshot {
        let mut geo = GeoTrajectory::new();
        let mut gsm = GsmTrajectory::new(n_channels);
        for i in 0..len {
            geo.push(GeoSample {
                heading_rad: (i as f64 * 0.01) - 1.5,
                timestamp_s: 100.0 + i as f64 * 0.5,
            });
            gsm.push(&PowerVector::from_fn(n_channels, |ch| {
                ((ch + i) % 5 != 0).then(|| -60.0 - ((ch * 7 + i) % 40) as f32 * 0.5)
            }));
        }
        ContextSnapshot {
            vehicle_id: with_id.then_some(0xDEAD_BEEF),
            geo,
            gsm,
            trace: None,
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let snap = snapshot(50, 24, true);
        let wire = encode_snapshot(&snap);
        let back = decode_snapshot(&wire).unwrap();
        assert_eq!(back.vehicle_id, Some(0xDEAD_BEEF));
        assert_eq!(back.gsm.len(), 50);
        assert_eq!(back.gsm.n_channels(), 24);
        assert_eq!(back.geo.len(), 50);
        for i in 0..50 {
            let a = snap.geo.samples()[i];
            let b = back.geo.samples()[i];
            assert!((a.heading_rad - b.heading_rad).abs() < 1e-4);
            assert!((a.timestamp_s - b.timestamp_s).abs() < 1e-3);
            for ch in 0..24 {
                match (snap.gsm.get(ch, i), back.gsm.get(ch, i)) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() <= 0.25, "rssi {x} → {y}")
                    }
                    (None, None) => {}
                    other => panic!("missing-ness not preserved: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn roundtrip_without_vehicle_id() {
        let snap = snapshot(10, 8, false);
        let back = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert_eq!(back.vehicle_id, None);
        assert_eq!(back.gsm.len(), 10);
    }

    #[test]
    fn traced_roundtrip_and_backward_compat() {
        let ctx = TraceContext::root(0xDEAD_BEEF, 42).with_parent(9);
        let plain = snapshot(12, 6, true);
        let traced = plain.clone().with_trace(ctx);

        // The trace context survives the wire byte-exactly.
        let wire = encode_snapshot(&traced);
        assert_eq!(wire.len(), encoded_size(12, 6) + TRACE_CONTEXT_WIRE_BYTES);
        let back = decode_snapshot(&wire).unwrap();
        assert_eq!(back.trace, Some(ctx));
        assert_eq!(back.vehicle_id, plain.vehicle_id);
        assert_eq!(back.len(), plain.len());

        // Backward compatibility both ways: an untraced snapshot encodes
        // byte-for-byte as before the extension (the flag bit stays clear),
        // and those pre-extension bytes decode with `trace: None`.
        let old_wire = encode_snapshot(&plain);
        assert_eq!(old_wire.len(), encoded_size(12, 6));
        assert_eq!(old_wire[5], FLAG_VEHICLE_ID, "only bit 0 set");
        assert_eq!(decode_snapshot(&old_wire).unwrap().trace, None);

        // A payload truncated inside the trace bytes is Truncated, not
        // misparsed as context data.
        let cut = 4 + 1 + 1 + 2 + 4 + 8 + TRACE_CONTEXT_WIRE_BYTES / 2;
        assert_eq!(decode_snapshot(&wire[..cut]), Err(CodecError::Truncated));

        // Trace ids are a pure hash of `(vehicle_id, clock)`, so the
        // decoder recomputes and rejects any bit damage to the id, the
        // clock, or the sender id — corrupted beacons can never plant an
        // orphan trace id in a merged fleet trace.
        let trace_off = 4 + 1 + 1 + 2 + 4 + 8;
        for bit_of in [
            trace_off,                        // trace_id low byte
            trace_off + 7,                    // trace_id high byte
            trace_off + TRACE_CONTEXT_WIRE_BYTES - 1, // clock high byte
            4 + 1 + 1 + 2 + 4,                // vehicle_id low byte
        ] {
            let mut damaged = wire.to_vec();
            damaged[bit_of] ^= 0x40;
            assert!(
                matches!(decode_snapshot(&damaged), Err(CodecError::Corrupt(_))),
                "flip at offset {bit_of} must be caught"
            );
        }
        // An anonymous snapshot cannot carry a verifiable trace: the
        // infallible encoder silently drops it instead of emitting bytes
        // every decoder would reject.
        let anon = snapshot(12, 6, false).with_trace(ctx);
        let anon_wire = encode_snapshot(&anon);
        assert_eq!(anon_wire[5], 0, "no flags set");
        assert_eq!(decode_snapshot(&anon_wire).unwrap().trace, None);
    }

    #[test]
    fn quantisation_boundaries() {
        assert_eq!(quantise_rssi(f32::NAN), 255);
        assert!(dequantise_rssi(255).is_nan());
        assert_eq!(quantise_rssi(-110.0), 0);
        assert_eq!(dequantise_rssi(0), -110.0);
        // Values below the floor clamp to the floor.
        assert_eq!(quantise_rssi(-150.0), 0);
        // Values above the representable range clamp to 254 (≈ +17 dBm).
        assert_eq!(quantise_rssi(50.0), 254);
        assert_eq!(dequantise_rssi(254), 17.0);
        // Mid-range resolution is 0.5 dB.
        let q = quantise_rssi(-73.26);
        assert!((dequantise_rssi(q) - -73.26).abs() <= 0.25);
    }

    #[test]
    fn size_matches_paper_order_of_magnitude() {
        // 1 km × 194 channels ≈ 200 KB; the paper quotes 182 KB for a 1 km
        // context (§V-B). Same order, slightly larger because we carry the
        // full 194-channel band, not the 115-channel prototype subset.
        let sz = encoded_size(1000, 194);
        assert!(sz > 150_000 && sz < 250_000, "1 km context is {sz} bytes");
        let snap = snapshot(100, 194, true);
        assert_eq!(encode_snapshot(&snap).len(), encoded_size(100, 194));
        // The 115-channel prototype subset stays in the same 100–200 KB
        // band the paper reports (182 KB including their geometry framing).
        let proto = encoded_size(1000, 115);
        assert!(
            (100_000..200_000).contains(&proto),
            "115-channel context is {proto} bytes"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_snapshot(&[1, 2, 3]), Err(CodecError::Truncated));
        let mut wire = encode_snapshot(&snapshot(5, 4, true)).to_vec();
        wire[0] ^= 0xFF;
        assert_eq!(decode_snapshot(&wire), Err(CodecError::BadMagic));
        let mut wire = encode_snapshot(&snapshot(5, 4, true)).to_vec();
        wire[4] = 99;
        assert_eq!(decode_snapshot(&wire), Err(CodecError::BadVersion(99)));
        let wire = encode_snapshot(&snapshot(5, 4, true));
        assert_eq!(
            decode_snapshot(&wire[..wire.len() - 3]),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn misaligned_snapshot_is_a_checked_error_not_a_panic() {
        // Build a snapshot whose geo half is one metre short of its gsm
        // half (easy to produce by mixing tails of different lengths).
        let full = snapshot(10, 4, true);
        let misaligned = ContextSnapshot {
            vehicle_id: full.vehicle_id,
            geo: full.geo.tail(9),
            gsm: full.gsm.tail(10),
            trace: None,
        };
        assert_eq!(
            try_encode_snapshot(&misaligned),
            Err(CodecError::Misaligned { geo: 9, gsm: 10 })
        );
        // The infallible entry point encodes the aligned prefix instead of
        // panicking on slice indexing (release-mode behaviour before the
        // fix) — and the result still decodes.
        let wire = encode_snapshot(&misaligned);
        let back = decode_snapshot(&wire).unwrap();
        assert_eq!(back.len(), 9);
        assert_eq!(back.geo.len(), back.gsm.len());
        // Aligned snapshots pass through the fallible path unchanged.
        assert_eq!(try_encode_snapshot(&full).unwrap(), encode_snapshot(&full));
    }

    #[test]
    fn zero_channel_nonempty_payload_rejected() {
        // Hand-craft a header claiming 0 channels but 3 metres of context.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.push(VERSION);
        wire.push(0); // no vehicle id
        wire.extend_from_slice(&0u16.to_le_bytes()); // n_channels = 0
        wire.extend_from_slice(&3u32.to_le_bytes()); // len = 3
        wire.extend_from_slice(&0f64.to_le_bytes()); // t0
        wire.extend_from_slice(&[0u8; 18]); // 3 metres × (2 + 4 + 0) bytes
        assert!(matches!(
            decode_snapshot(&wire),
            Err(CodecError::Corrupt(_))
        ));
        // A genuinely empty zero-channel snapshot stays decodable.
        let empty = ContextSnapshot {
            vehicle_id: None,
            geo: GeoTrajectory::new(),
            gsm: GsmTrajectory::new(0),
            trace: None,
        };
        let back = decode_snapshot(&encode_snapshot(&empty)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn counted_decode_attributes_every_outcome() {
        let reg = Registry::new();
        let m = CodecMetrics::register(&reg);
        let good = encode_snapshot(&snapshot(5, 4, true));
        assert!(m.decode(&good).is_ok());
        assert!(m.decode(&good[..good.len() - 3]).is_err());
        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(m.decode(&bad_magic).is_err());
        let mut bad_version = good.to_vec();
        bad_version[4] = 99;
        assert!(m.decode(&bad_version).is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rups_v2v_codec_decode_ok"), Some(1));
        assert_eq!(snap.counter("rups_v2v_codec_rejected_truncated"), Some(1));
        assert_eq!(snap.counter("rups_v2v_codec_rejected_bad_magic"), Some(1));
        assert_eq!(snap.counter("rups_v2v_codec_rejected_bad_version"), Some(1));
        assert_eq!(snap.counter("rups_v2v_codec_rejected_corrupt"), Some(0));
    }

    #[test]
    fn decoded_snapshot_still_matches_for_rups() {
        // End-to-end: a context that goes through the codec must still
        // produce a correct distance fix.
        use rups_core::config::RupsConfig;
        use rups_core::pipeline::RupsNode;
        let cfg = RupsConfig {
            n_channels: 32,
            window_channels: 24,
            ..RupsConfig::default()
        };
        let field = |s: f64, ch: usize| rups_core::testfield::rssi(3, s, ch);
        let mk = |start: usize| {
            let mut node = RupsNode::new(cfg.clone());
            for i in 0..300 {
                let s = (start + i) as f64;
                node.append_metre(
                    GeoSample {
                        heading_rad: 0.0,
                        timestamp_s: s,
                    },
                    &PowerVector::from_fn(32, |ch| Some(field(s, ch))),
                )
                .unwrap();
            }
            node
        };
        let a = mk(0);
        let b = mk(55);
        let wire = encode_snapshot(&b.snapshot(None));
        let decoded = decode_snapshot(&wire).unwrap();
        let fix = a.fix_distance(&decoded).unwrap();
        assert!(
            (fix.distance_m - 55.0).abs() < 1.5,
            "distance {}",
            fix.distance_m
        );
    }
}

//! The composed RSSI field: towers + path loss + shadowing + small-scale
//! fading + temporal dynamics.
//!
//! [`GsmEnvironment::rssi_dbm`] is the single entry point the scanner (and
//! the empirical-study experiments) query: a deterministic function of
//! `(channel, position, time)` whose statistics are calibrated to the
//! paper's §III measurements.

use crate::noise;
use crate::params::{EnvironmentClass, PropagationParams};
use crate::tower::{deploy_towers, Tower};
use crate::NOISE_FLOOR_DBM;
use serde::{Deserialize, Serialize};

/// A deterministic GSM radio environment over a road corridor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GsmEnvironment {
    seed: u64,
    class: EnvironmentClass,
    params: PropagationParams,
    n_channels: usize,
    /// Carrier lookup: channel → the towers serving that channel (distant
    /// sites reuse frequencies; the receiver captures the strongest).
    tower_of_channel: Vec<Vec<Tower>>,
}

impl GsmEnvironment {
    /// Builds an environment of `class` over a corridor of
    /// `corridor_len_m` metres with `n_channels` scanned channels, fully
    /// determined by `seed`.
    pub fn new(seed: u64, class: EnvironmentClass, corridor_len_m: f64, n_channels: usize) -> Self {
        let params = class.params();
        let towers = deploy_towers(seed, corridor_len_m, n_channels, &params);
        let mut tower_of_channel = vec![Vec::new(); n_channels];
        for t in towers {
            tower_of_channel[t.channel].push(t);
        }
        Self {
            seed,
            class,
            params,
            n_channels,
            tower_of_channel,
        }
    }

    /// Builds an environment for a non-GSM band: the class parameters are
    /// adapted to the band's propagation physics (see
    /// [`crate::band::BandKind::adjust`]).
    pub fn with_band(
        seed: u64,
        class: EnvironmentClass,
        band: crate::band::BandKind,
        corridor_len_m: f64,
        n_channels: usize,
    ) -> Self {
        let params = band.adjust(&class.params());
        Self::with_params(seed, class, params, corridor_len_m, n_channels)
    }

    /// Same, but with explicit propagation parameters (for ablations).
    pub fn with_params(
        seed: u64,
        class: EnvironmentClass,
        params: PropagationParams,
        corridor_len_m: f64,
        n_channels: usize,
    ) -> Self {
        let towers = deploy_towers(seed, corridor_len_m, n_channels, &params);
        let mut tower_of_channel = vec![Vec::new(); n_channels];
        for t in towers {
            tower_of_channel[t.channel].push(t);
        }
        Self {
            seed,
            class,
            params,
            n_channels,
            tower_of_channel,
        }
    }

    /// Environment class.
    pub fn class(&self) -> EnvironmentClass {
        self.class
    }

    /// Propagation parameters in force.
    pub fn params(&self) -> &PropagationParams {
        &self.params
    }

    /// Number of channels in the scanned band.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Channels that host an active carrier in this corridor.
    pub fn active_channels(&self) -> Vec<usize> {
        self.tower_of_channel
            .iter()
            .enumerate()
            .filter_map(|(ch, t)| (!t.is_empty()).then_some(ch))
            .collect()
    }

    /// Median path-loss mean RSSI of channel `ch` at `pos` (no fading, no
    /// temporal terms): the strongest co-channel carrier wins (capture
    /// effect). `None` when no carrier serves the channel.
    pub fn mean_rssi_dbm(&self, ch: usize, pos: (f64, f64)) -> Option<f64> {
        let towers = self.tower_of_channel.get(ch)?;
        towers
            .iter()
            .map(|t| {
                let dx = pos.0 - t.pos.0;
                let dy = pos.1 - t.pos.1;
                let d = (dx * dx + dy * dy).sqrt().max(10.0);
                t.tx_power_dbm
                    - path_loss_db(d, self.params.path_loss_exponent)
                    - self.params.extra_attenuation_db
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// The spatial fading terms of channel `ch` at `pos`: correlated
    /// shadowing plus small-scale fading, in dB.
    pub fn spatial_fading_db(&self, ch: usize, pos: (f64, f64)) -> f64 {
        let p = &self.params;
        let shadow = p.shadow_sigma_db
            * noise::fractal2(self.seed ^ 0x5AD0, ch as u64, pos.0, pos.1, p.shadow_corr_m);
        let fast = p.fast_sigma_db
            * noise::noise2(
                self.seed ^ 0xFA57,
                ch as u64,
                pos.0 / p.fast_corr_m,
                pos.1 / p.fast_corr_m,
            );
        shadow + fast
    }

    /// The temporal terms of channel `ch` at time `t`: slow drift, fast
    /// jitter and interference bursts, in dB.
    pub fn temporal_db(&self, ch: usize, t: f64) -> f64 {
        let p = &self.params;
        let slow = p.temporal_slow_sigma_db
            * noise::noise1(self.seed ^ 0x7E40, ch as u64, t / p.temporal_slow_corr_s);
        let fast = p.temporal_fast_sigma_db
            * noise::noise1(self.seed ^ 0x91B2, ch as u64, t / p.temporal_fast_corr_s);
        // Interference bursts: in each burst slot a channel may host an
        // interfering transmission whose level is a hashed constant for the
        // slot's duration.
        let slot = (t / p.burst_slot_s).floor() as i64;
        let gate = noise::slot_uniform(self.seed ^ 0xB057, ch as u64, slot);
        let burst = if gate < p.burst_prob_per_slot {
            let amp = noise::slot_uniform(self.seed ^ 0xB058, ch as u64, slot) * 2.0 - 1.0;
            amp * p.burst_sigma_db
        } else {
            0.0
        };
        slow + fast + burst
    }

    /// The full RSSI of channel `ch` at `pos` and time `t`, clamped at the
    /// noise floor. Channels without a carrier report the floor plus jitter.
    pub fn rssi_dbm(&self, ch: usize, pos: (f64, f64), t: f64) -> f32 {
        let jitter = || {
            (self.params.temporal_fast_sigma_db
                * noise::noise1(self.seed ^ 0xF100, ch as u64, t / 2.0)) as f32
        };
        match self.mean_rssi_dbm(ch, pos) {
            Some(mean) => {
                let v = mean + self.spatial_fading_db(ch, pos) + self.temporal_db(ch, t);
                (v as f32).max(NOISE_FLOOR_DBM + jitter())
            }
            None => NOISE_FLOOR_DBM + jitter(),
        }
    }

    /// Convenience: the full power vector (every channel) at `pos`, `t`,
    /// with an optional extra attenuation (radio placement, occlusion).
    pub fn power_vector_dbm(&self, pos: (f64, f64), t: f64, extra_loss_db: f32) -> Vec<f32> {
        (0..self.n_channels)
            .map(|ch| (self.rssi_dbm(ch, pos, t) - extra_loss_db).max(NOISE_FLOOR_DBM))
            .collect()
    }
}

/// Log-distance path loss referenced to 37 dB at d₀ = 10 m (≈ free space at
/// 900 MHz, folding in antenna gains), in dB. Distances are floored at the
/// 10 m reference.
pub fn path_loss_db(distance_m: f64, exponent: f64) -> f64 {
    let d = distance_m.max(10.0);
    37.0 + 10.0 * exponent * (d / 10.0).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> GsmEnvironment {
        GsmEnvironment::new(77, EnvironmentClass::SemiOpen, 5_000.0, 64)
    }

    #[test]
    fn path_loss_monotone_in_distance_and_exponent() {
        assert!(path_loss_db(100.0, 3.3) > path_loss_db(50.0, 3.3));
        assert!(path_loss_db(100.0, 3.8) > path_loss_db(100.0, 2.8));
        // Reference point: 37 dB at (or below) 10 m.
        assert_eq!(path_loss_db(10.0, 3.3), 37.0);
        assert_eq!(path_loss_db(1.0, 3.3), 37.0);
    }

    #[test]
    fn field_is_deterministic() {
        let e = env();
        let a = e.rssi_dbm(5, (1000.0, 0.0), 100.0);
        let b = e.rssi_dbm(5, (1000.0, 0.0), 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn field_above_floor_near_tower() {
        let e = env();
        let active = e.active_channels();
        assert!(!active.is_empty());
        // Some active channel must be well above the floor somewhere on the
        // corridor.
        let mut best = f32::MIN;
        for &ch in &active {
            for x in (0..5000).step_by(100) {
                best = best.max(e.rssi_dbm(ch, (x as f64, 0.0), 0.0));
            }
        }
        assert!(best > -80.0, "strongest observed RSSI {best}");
    }

    #[test]
    fn inactive_channels_sit_at_the_floor() {
        let e = env();
        let active = e.active_channels();
        let inactive = (0..64).find(|ch| !active.contains(ch)).unwrap();
        let v = e.rssi_dbm(inactive, (2500.0, 0.0), 50.0);
        assert!((NOISE_FLOOR_DBM - 3.0..=NOISE_FLOOR_DBM + 3.0).contains(&v));
        assert_eq!(e.mean_rssi_dbm(inactive, (2500.0, 0.0)), None);
    }

    #[test]
    fn mean_rssi_varies_along_the_corridor() {
        // With sites scattered along the corridor, the mean field of an
        // active channel must vary substantially over kilometres — the
        // gradient structure RUPS fingerprints.
        let e = env();
        let ch = e.active_channels()[0];
        let values: Vec<f64> = (0..50)
            .map(|i| e.mean_rssi_dbm(ch, (i as f64 * 100.0, 0.0)).unwrap())
            .collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 10.0, "mean field too flat: {min}..{max}");
        // Typical received levels sit in the weak-carrier regime the paper
        // shows (Fig. 1 colour scale runs −50…−110 dBm).
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((-105.0..=-55.0).contains(&mean), "mean level {mean} dBm");
    }

    #[test]
    fn spatial_fading_changes_over_a_metre() {
        let e = env();
        let ch = e.active_channels()[0];
        let a = e.spatial_fading_db(ch, (1000.0, 0.0));
        let b = e.spatial_fading_db(ch, (1001.0, 0.0));
        assert_ne!(a, b);
        // Fast fading has sub-metre correlation: expect a visible change.
        assert!((a - b).abs() > 0.01);
    }

    #[test]
    fn lanes_see_slightly_different_fields() {
        let e = env();
        let ch = e.active_channels()[0];
        let same_lane = e.rssi_dbm(ch, (1000.0, 0.0), 0.0);
        let other_lane = e.rssi_dbm(ch, (1000.0, 7.0), 0.0);
        assert_ne!(same_lane, other_lane);
    }

    #[test]
    fn temporal_drift_is_bounded_and_slow() {
        let e = env();
        let ch = e.active_channels()[0];
        // Drift over 5 s is small; bursts change things over minutes.
        let a = e.temporal_db(ch, 100.0);
        let b = e.temporal_db(ch, 105.0);
        assert!(
            (a - b).abs() < 4.0,
            "5 s drift too large: {}",
            (a - b).abs()
        );
        // Bounded overall.
        for i in 0..200 {
            let v = e.temporal_db(ch, i as f64 * 13.7);
            assert!(v.abs() < 25.0);
        }
    }

    #[test]
    fn power_vector_has_band_width_and_respects_floor() {
        let e = env();
        let pv = e.power_vector_dbm((2000.0, 0.0), 10.0, 0.0);
        assert_eq!(pv.len(), 64);
        assert!(pv.iter().all(|&v| v >= NOISE_FLOOR_DBM - 3.0));
        // Heavy extra loss pins everything to (about) the floor.
        let pv = e.power_vector_dbm((2000.0, 0.0), 10.0, 200.0);
        assert!(pv.iter().all(|&v| (v - NOISE_FLOOR_DBM).abs() < 3.0));
    }

    #[test]
    fn revisit_same_location_later_is_similar() {
        // The core fingerprinting property: same place, 10 minutes apart,
        // high per-vector correlation (Fig. 2's premise).
        let e = env();
        let a = e.power_vector_dbm((1500.0, 0.0), 0.0, 0.0);
        let b = e.power_vector_dbm((1500.0, 0.0), 600.0, 0.0);
        let r = rups_core::stats::pearson(&a, &b).unwrap();
        assert!(r > 0.8, "10-minute revisit correlation {r}");
    }

    #[test]
    fn different_roads_are_dissimilar() {
        // Two distinct environments (different seeds = different roads).
        let e1 = env();
        let e2 = GsmEnvironment::new(78, EnvironmentClass::SemiOpen, 5_000.0, 64);
        let a = e1.power_vector_dbm((1500.0, 0.0), 0.0, 0.0);
        let b = e2.power_vector_dbm((1500.0, 0.0), 0.0, 0.0);
        let r = rups_core::stats::pearson(&a, &b).unwrap();
        assert!(r < 0.8, "cross-road correlation {r} suspiciously high");
    }
}

//! # gsm-sim
//!
//! A GSM R-900 radio-environment simulator: the substrate that replaces the
//! paper's three months of Shanghai drive traces (§III-A, §VI-A).
//!
//! The original RUPS evaluation replayed RSSI sweeps captured with
//! OsmocomBB-flashed Motorola C118 phones. We have neither the hardware nor
//! the traces, so this crate synthesizes a radio environment with the three
//! statistical properties the paper measures and that RUPS depends on:
//!
//! * **Temporary stability** (Fig. 2) — the RSSI at a fixed location drifts
//!   slowly and suffers occasional per-channel interference bursts, so power
//!   vectors taken minutes apart stay highly correlated.
//! * **Geographical uniqueness** (Fig. 3) — spatially correlated log-normal
//!   shadowing (decorrelation length tens of metres) over distinct tower
//!   geometries makes trajectories from different roads uncorrelated.
//! * **Fine resolution** (Fig. 4) — small-scale (multipath) fading with a
//!   sub-metre correlation length makes power vectors one metre apart
//!   measurably different.
//!
//! Everything is **deterministic**: the field is a pure function of
//! `(seed, channel, position, time)` built from hashed value noise, so the
//! same query always returns the same RSSI — the property that makes GSM
//! fingerprints usable in the first place, and what makes the simulation
//! reproducible bit-for-bit.
//!
//! ## Layout
//!
//! * [`noise`] — hashed 1-D/2-D value noise kernels.
//! * [`params`] — per-environment propagation parameters
//!   ([`params::EnvironmentClass`]: open / semi-open / close, §VI-A).
//! * [`tower`] — seeded cell-tower deployment along a road corridor.
//! * [`field`] — [`field::GsmEnvironment`], the composed RSSI field.
//! * [`scanner`] — the radio scanner model: 15 ms per channel, 1–k parallel
//!   radios, front vs central placement (§V-C, §VI-B).
//! * [`occlusion`] — transient passing-vehicle attenuation events (§VI-C).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod band;
pub mod field;
pub mod noise;
pub mod occlusion;
pub mod params;
pub mod scanner;
pub mod tower;

pub use band::BandKind;
pub use field::GsmEnvironment;
pub use occlusion::Occlusion;
pub use params::{EnvironmentClass, PropagationParams};
pub use scanner::{scan_trace, RadioPlacement, ScannerConfig};
pub use tower::{deploy_towers, Tower};

/// Thermal noise floor reported when no carrier is receivable, in dBm.
pub const NOISE_FLOOR_DBM: f32 = -110.0;

//! Hashed value-noise kernels.
//!
//! All stochastic structure in the simulated radio environment — shadowing,
//! small-scale fading, temporal drift, interference bursts — is generated
//! from these deterministic kernels: a lattice of hashed pseudo-random
//! values smoothly interpolated in one or two dimensions. Determinism is
//! essential: a GSM fingerprint only works because revisiting a location
//! reproduces the same signal structure.

/// SplitMix64 mixer: maps any 64-bit input to a well-distributed output.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to three lattice coordinates into one hash.
#[inline]
fn hash3(seed: u64, a: i64, b: i64, c: u64) -> u64 {
    let mut h = seed;
    h = splitmix64(h ^ (a as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    h = splitmix64(h ^ (b as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
    splitmix64(h ^ c.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Uniform value in `[-1, 1]` at an integer lattice point.
#[inline]
fn lattice(seed: u64, a: i64, b: i64, c: u64) -> f64 {
    (hash3(seed, a, b, c) as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Smoothstep interpolation weight.
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// 1-D value noise with unit lattice spacing: smooth, deterministic,
/// zero-mean, range `[-1, 1]`. `stream` separates independent noise
/// processes sharing a seed (e.g. one per channel).
pub fn noise1(seed: u64, stream: u64, x: f64) -> f64 {
    let k = x.floor();
    let t = smooth(x - k);
    let k = k as i64;
    let a = lattice(seed, k, 0, stream);
    let b = lattice(seed, k + 1, 0, stream);
    a + t * (b - a)
}

/// 2-D value noise with unit lattice spacing (bilinear smoothstep blend).
pub fn noise2(seed: u64, stream: u64, x: f64, y: f64) -> f64 {
    let kx = x.floor();
    let ky = y.floor();
    let tx = smooth(x - kx);
    let ty = smooth(y - ky);
    let (kx, ky) = (kx as i64, ky as i64);
    let v00 = lattice(seed, kx, ky, stream);
    let v10 = lattice(seed, kx + 1, ky, stream);
    let v01 = lattice(seed, kx, ky + 1, stream);
    let v11 = lattice(seed, kx + 1, ky + 1, stream);
    let a = v00 + tx * (v10 - v00);
    let b = v01 + tx * (v11 - v01);
    a + ty * (b - a)
}

/// Two-octave 2-D noise: a coarse octave at `coarse_scale` metres per
/// lattice cell plus a half-amplitude octave at half the scale. Gives the
/// shadowing field a more natural spectrum than single-octave noise.
pub fn fractal2(seed: u64, stream: u64, x: f64, y: f64, coarse_scale: f64) -> f64 {
    let n1 = noise2(seed, stream, x / coarse_scale, y / coarse_scale);
    let n2 = noise2(
        seed ^ 0x6A09_E667,
        stream,
        2.0 * x / coarse_scale,
        2.0 * y / coarse_scale,
    );
    (n1 + 0.5 * n2) / 1.118 // renormalize: sqrt(1 + 0.25)
}

/// Uniform value in `[0, 1)` for a discrete event slot — used for
/// interference-burst scheduling.
pub fn slot_uniform(seed: u64, stream: u64, slot: i64) -> f64 {
    hash3(seed, slot, 1, stream) as f64 / u64::MAX as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(noise1(1, 2, 3.7), noise1(1, 2, 3.7));
        assert_eq!(noise2(1, 2, 3.7, -1.2), noise2(1, 2, 3.7, -1.2));
        assert_ne!(noise1(1, 2, 3.7), noise1(1, 3, 3.7));
        assert_ne!(noise1(1, 2, 3.7), noise1(2, 2, 3.7));
    }

    #[test]
    fn noise_is_continuous() {
        // Max step over 0.01 increments must be small.
        let mut max_step: f64 = 0.0;
        for i in 0..1000 {
            let x = i as f64 * 0.01;
            let d = (noise1(9, 0, x + 0.01) - noise1(9, 0, x)).abs();
            max_step = max_step.max(d);
        }
        assert!(max_step < 0.05, "1-D noise jumps {max_step}");
    }

    #[test]
    fn noise_matches_lattice_at_integers() {
        for k in -5..5 {
            let v = noise1(4, 7, k as f64);
            assert!((-1.0..=1.0).contains(&v));
            // Interpolation endpoints: value at integer equals lattice value.
            assert!((noise1(4, 7, k as f64 + 1e-9) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn noise_mean_near_zero() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| noise1(11, 3, i as f64 * 0.618)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn noise2_varies_in_both_axes() {
        let base = noise2(5, 0, 10.3, 20.7);
        assert_ne!(base, noise2(5, 0, 11.3, 20.7));
        assert_ne!(base, noise2(5, 0, 10.3, 21.7));
    }

    #[test]
    fn fractal_in_range() {
        for i in 0..500 {
            let v = fractal2(3, 1, i as f64 * 1.7, i as f64 * 0.3, 30.0);
            assert!(v.abs() <= 1.5, "fractal noise out of range: {v}");
        }
    }

    #[test]
    fn distant_samples_uncorrelated() {
        // Sample the coarse field at many sites vs sites 10 km away; the
        // product-moment correlation should be near zero.
        let xs: Vec<f64> = (0..400).map(|i| noise1(2, 0, i as f64)).collect();
        let ys: Vec<f64> = (0..400)
            .map(|i| noise1(2, 0, i as f64 + 10_000.0))
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / n;
        let vx: f64 = xs.iter().map(|a| (a - mx) * (a - mx)).sum::<f64>() / n;
        let vy: f64 = ys.iter().map(|b| (b - my) * (b - my)).sum::<f64>() / n;
        let r = cov / (vx * vy).sqrt();
        assert!(r.abs() < 0.15, "distant correlation {r}");
    }

    #[test]
    fn slot_uniform_distribution() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| slot_uniform(8, 1, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02);
        let frac_low = (0..n).filter(|&i| slot_uniform(8, 1, i) < 0.1).count() as f64 / n as f64;
        assert!((frac_low - 0.1).abs() < 0.02);
    }
}

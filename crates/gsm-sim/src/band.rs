//! Frequency bands beyond GSM-900 (§VII future work).
//!
//! The paper's future-work section proposes fusing "other ambient wireless
//! signals such as the 3G/4G, FM and TV bands" into the fingerprint. Bands
//! differ in propagation physics, and the differences matter for RUPS:
//!
//! * **FM broadcast (88–108 MHz)** — 3 m wavelength, so small-scale fading
//!   is coarse (no sub-metre texture → worse fine resolution), but signals
//!   are strong, extremely stable in time (fixed broadcast transmitters, no
//!   traffic channels) and penetrate under elevated decks far better than
//!   900 MHz — exactly complementary to GSM where GSM is weakest.
//! * **GSM-900** — the paper's band: fine spatial texture, moderate
//!   stability (interference bursts from traffic channels).

use crate::params::PropagationParams;
use serde::{Deserialize, Serialize};

/// A scannable frequency band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandKind {
    /// The R-GSM-900 band of the paper (default everywhere).
    Gsm900,
    /// FM broadcast band, ~30 station carriers.
    FmBroadcast,
}

impl BandKind {
    /// Typical number of receivable carriers in the band.
    pub fn typical_channels(self) -> usize {
        match self {
            BandKind::Gsm900 => rups_core::channel::RGSM_900_CHANNELS,
            BandKind::FmBroadcast => 30,
        }
    }

    /// Adapts GSM-calibrated propagation parameters to this band's physics.
    pub fn adjust(self, p: &PropagationParams) -> PropagationParams {
        match self {
            BandKind::Gsm900 => p.clone(),
            BandKind::FmBroadcast => PropagationParams {
                // 100 MHz diffracts around clutter: gentler distance decay
                // and weaker shadowing with a longer correlation length.
                path_loss_exponent: (p.path_loss_exponent - 0.6).max(2.0),
                shadow_sigma_db: p.shadow_sigma_db * 0.7,
                shadow_corr_m: p.shadow_corr_m * 2.5,
                // λ ≈ 3 m: small-scale fading is coarse.
                fast_sigma_db: p.fast_sigma_db * 0.8,
                fast_corr_m: 3.0,
                // Broadcast carriers are rock-stable: no traffic bursts.
                temporal_slow_sigma_db: p.temporal_slow_sigma_db * 0.5,
                temporal_slow_corr_s: p.temporal_slow_corr_s * 2.0,
                temporal_fast_sigma_db: p.temporal_fast_sigma_db * 0.5,
                temporal_fast_corr_s: p.temporal_fast_corr_s,
                burst_prob_per_slot: 0.0,
                burst_sigma_db: 0.0,
                burst_slot_s: p.burst_slot_s,
                // Long waves slip under elevated decks.
                extra_attenuation_db: p.extra_attenuation_db * 0.3,
                // A handful of broadcast sites serve a whole city.
                tower_density_per_km: (p.tower_density_per_km * 0.25).max(0.4),
                active_channel_fraction: 0.7,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnvironmentClass;

    #[test]
    fn fm_is_gentler_than_gsm() {
        let base = EnvironmentClass::Close.params();
        let fm = BandKind::FmBroadcast.adjust(&base);
        assert!(fm.path_loss_exponent < base.path_loss_exponent);
        assert!(fm.shadow_corr_m > base.shadow_corr_m);
        assert!(fm.fast_corr_m > base.fast_corr_m);
        assert_eq!(fm.burst_prob_per_slot, 0.0);
        assert!(fm.extra_attenuation_db < base.extra_attenuation_db);
    }

    #[test]
    fn gsm_adjustment_is_identity() {
        let base = EnvironmentClass::Open.params();
        assert_eq!(BandKind::Gsm900.adjust(&base), base);
    }

    #[test]
    fn channel_counts() {
        assert_eq!(BandKind::Gsm900.typical_channels(), 194);
        assert_eq!(BandKind::FmBroadcast.typical_channels(), 30);
    }
}

//! The GSM scanner model: sweep timing, parallel radios and placement
//! (§V-C, §VI-B).
//!
//! One radio measures one channel per ~15 ms, so sweeping a band takes
//! seconds — while the vehicle keeps moving. That is the mechanical origin
//! of *missing channels*: each metre of road only sees the few channels the
//! sweep happened to visit while crossing it. Adding parallel radios
//! shortens the sweep (the paper splits the band across 1, 2 or 4 radios per
//! group), and radio placement matters: units on the front instrument panel
//! see the sky better than units buried at the centre of the cabin
//! (Fig. 9's "4 central radios" curve is visibly worse).

use crate::field::GsmEnvironment;
use crate::noise::slot_uniform;
use crate::occlusion::Occlusion;
use crate::NOISE_FLOOR_DBM;
use rups_core::binding::ScanSample;
use serde::{Deserialize, Serialize};

/// Where the scanning radios are mounted (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioPlacement {
    /// On top of the front instrument panel: best sky view.
    FrontPanel,
    /// At the centre of the cabin: extra body attenuation and noise.
    Central,
}

impl RadioPlacement {
    /// Flat extra attenuation from vehicle-body shadowing, dB. The cabin
    /// centre sits behind the engine block, roof and passengers: §VI-B
    /// observes a clear accuracy penalty for the central group.
    pub fn attenuation_db(self) -> f32 {
        match self {
            RadioPlacement::FrontPanel => 0.0,
            RadioPlacement::Central => 10.0,
        }
    }

    /// Standard deviation of additional measurement noise, dB (multipath
    /// inside the cabin adds scatter on top of the attenuation).
    pub fn noise_sigma_db(self) -> f64 {
        match self {
            RadioPlacement::FrontPanel => 1.0,
            RadioPlacement::Central => 4.5,
        }
    }
}

/// Configuration of a vehicle's scanning-radio group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScannerConfig {
    /// Number of radios scanning in parallel (the paper uses 1, 2 or 4).
    pub n_radios: usize,
    /// Mounting position of the group.
    pub placement: RadioPlacement,
    /// Time to measure one channel, seconds (§V-C: 15 ms).
    pub channel_scan_time_s: f64,
    /// The channels this group sweeps (dense indices). The paper's
    /// prototype scans a 115-channel active subset of the band (§VI-A).
    pub channels: Vec<usize>,
    /// Seed for measurement noise (vary per vehicle).
    pub seed: u64,
}

impl ScannerConfig {
    /// A scanner sweeping `channels` with `n_radios` parallel radios.
    pub fn new(n_radios: usize, placement: RadioPlacement, channels: Vec<usize>) -> Self {
        assert!(n_radios >= 1, "at least one radio required");
        assert!(!channels.is_empty(), "scanner needs at least one channel");
        Self {
            n_radios,
            placement,
            channel_scan_time_s: rups_core::channel::CHANNEL_SCAN_TIME_S,
            channels,
            seed: 0,
        }
    }

    /// Sets the measurement-noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seconds one full sweep of the band takes with this configuration.
    /// The band is split across radios, so k radios divide the sweep time
    /// by ~k (§V-C: 90 channels / 10 radios → 135 ms).
    pub fn sweep_time_s(&self) -> f64 {
        let per_radio = self.channels.len().div_ceil(self.n_radios);
        per_radio as f64 * self.channel_scan_time_s
    }
}

/// Approximately normal deterministic noise in `[-3σ, 3σ]` from three
/// hashed uniforms (Irwin–Hall with n = 3, rescaled to unit variance).
fn meas_noise(seed: u64, ch: usize, slot: i64, sigma: f64) -> f64 {
    let u1 = slot_uniform(seed ^ 0x11, ch as u64, slot);
    let u2 = slot_uniform(seed ^ 0x22, ch as u64, slot);
    let u3 = slot_uniform(seed ^ 0x33, ch as u64, slot);
    (u1 + u2 + u3 - 1.5) * 2.0 * sigma
}

/// Simulates the scanner group of one vehicle over `[t0, t1)`.
///
/// `path` maps time to the vehicle's (x, y) position in the environment's
/// metre frame. Each radio sweeps its share of `cfg.channels` round-robin;
/// each measurement reads the field at the position the vehicle occupies at
/// that instant, applies placement attenuation/noise and any active
/// occlusion, and is emitted as a [`ScanSample`] (channel indices are dense
/// band indices, directly usable by `rups_core`'s binder).
pub fn scan_trace(
    env: &GsmEnvironment,
    cfg: &ScannerConfig,
    path: impl Fn(f64) -> (f64, f64),
    t0: f64,
    t1: f64,
    occlusions: &[Occlusion],
) -> Vec<ScanSample> {
    let mut out = Vec::new();
    let n = cfg.channels.len();
    let share = n.div_ceil(cfg.n_radios);
    for radio in 0..cfg.n_radios {
        let lo = radio * share;
        if lo >= n {
            break;
        }
        let hi = (lo + share).min(n);
        let my_channels = &cfg.channels[lo..hi];
        let mut idx = 0usize;
        // Measurements complete at the end of each 15 ms dwell.
        let mut t = t0 + cfg.channel_scan_time_s;
        while t <= t1 {
            let ch = my_channels[idx % my_channels.len()];
            let pos = path(t);
            let raw = env.rssi_dbm(ch, pos, t);
            let occl = Occlusion::total_loss_db(occlusions, t);
            let slot = (t / cfg.channel_scan_time_s).round() as i64;
            let noise = meas_noise(
                cfg.seed ^ (radio as u64) << 32,
                ch,
                slot,
                cfg.placement.noise_sigma_db(),
            ) as f32;
            let rssi = (raw - cfg.placement.attenuation_db() - occl + noise).max(NOISE_FLOOR_DBM);
            out.push(ScanSample {
                timestamp_s: t,
                channel: ch,
                rssi_dbm: rssi,
            });
            idx += 1;
            t += cfg.channel_scan_time_s;
        }
    }
    out.sort_by(|a, b| a.timestamp_s.total_cmp(&b.timestamp_s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnvironmentClass;

    fn env() -> GsmEnvironment {
        GsmEnvironment::new(5, EnvironmentClass::SemiOpen, 3_000.0, 48)
    }

    #[test]
    fn sweep_time_divides_by_radio_count() {
        let chans: Vec<usize> = (0..90).collect();
        let one = ScannerConfig::new(1, RadioPlacement::FrontPanel, chans.clone());
        let ten = ScannerConfig::new(10, RadioPlacement::FrontPanel, chans);
        assert!((one.sweep_time_s() - 1.35).abs() < 1e-9);
        // §V-C: 90 channels over 10 radios take 135 ms.
        assert!((ten.sweep_time_s() - 0.135).abs() < 1e-9);
    }

    #[test]
    fn sample_count_scales_with_radios() {
        let e = env();
        let chans: Vec<usize> = (0..48).collect();
        let path = |t: f64| (10.0 * t, 0.0);
        let one = scan_trace(
            &e,
            &ScannerConfig::new(1, RadioPlacement::FrontPanel, chans.clone()),
            path,
            0.0,
            10.0,
            &[],
        );
        let four = scan_trace(
            &e,
            &ScannerConfig::new(4, RadioPlacement::FrontPanel, chans),
            path,
            0.0,
            10.0,
            &[],
        );
        // Same overall measurement rate per radio; 4 radios → 4× samples.
        assert!((four.len() as f64 / one.len() as f64 - 4.0).abs() < 0.1);
        // Sorted by time.
        assert!(four
            .windows(2)
            .all(|w| w[0].timestamp_s <= w[1].timestamp_s));
    }

    #[test]
    fn all_channels_covered_when_stationary_long_enough() {
        let e = env();
        let chans: Vec<usize> = (0..48).collect();
        let cfg = ScannerConfig::new(1, RadioPlacement::FrontPanel, chans);
        let samples = scan_trace(&e, &cfg, |_| (100.0, 0.0), 0.0, 1.0, &[]);
        let mut seen: Vec<usize> = samples.iter().map(|s| s.channel).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            48,
            "1 s at 15 ms/channel covers 66 measurements"
        );
    }

    #[test]
    fn central_placement_reads_weaker() {
        let e = env();
        let ch = e.active_channels()[0];
        let cfg_front = ScannerConfig::new(1, RadioPlacement::FrontPanel, vec![ch]);
        let cfg_central = ScannerConfig::new(1, RadioPlacement::Central, vec![ch]);
        let path = |_: f64| (1000.0, 0.0);
        let front = scan_trace(&e, &cfg_front, path, 0.0, 5.0, &[]);
        let central = scan_trace(&e, &cfg_central, path, 0.0, 5.0, &[]);
        let mean =
            |v: &[ScanSample]| v.iter().map(|s| s.rssi_dbm as f64).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&front) - mean(&central) > 3.0,
            "central radios should read ≈6 dB weaker: front {} central {}",
            mean(&front),
            mean(&central)
        );
    }

    #[test]
    fn occlusion_depresses_rssi_during_event() {
        let e = env();
        let ch = e.active_channels()[0];
        let cfg = ScannerConfig::new(1, RadioPlacement::FrontPanel, vec![ch]);
        let path = |_: f64| (1000.0, 0.0);
        let occl = [Occlusion {
            start_s: 2.0,
            end_s: 4.0,
            loss_db: 15.0,
        }];
        let clean = scan_trace(&e, &cfg, path, 0.0, 6.0, &[]);
        let shadowed = scan_trace(&e, &cfg, path, 0.0, 6.0, &occl);
        for (c, s) in clean.iter().zip(&shadowed) {
            assert_eq!(c.timestamp_s, s.timestamp_s);
            if c.timestamp_s >= 2.0 && c.timestamp_s < 4.0 && c.rssi_dbm > NOISE_FLOOR_DBM + 15.0 {
                assert!((c.rssi_dbm - s.rssi_dbm - 15.0).abs() < 1e-3);
            } else if c.timestamp_s < 2.0 {
                assert_eq!(c.rssi_dbm, s.rssi_dbm);
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let e = env();
        let chans: Vec<usize> = (0..16).collect();
        let cfg = ScannerConfig::new(2, RadioPlacement::FrontPanel, chans.clone()).with_seed(9);
        let a = scan_trace(&e, &cfg, |t| (t, 0.0), 0.0, 3.0, &[]);
        let b = scan_trace(&e, &cfg, |t| (t, 0.0), 0.0, 3.0, &[]);
        assert_eq!(a, b);
        let cfg2 = ScannerConfig::new(2, RadioPlacement::FrontPanel, chans).with_seed(10);
        let c = scan_trace(&e, &cfg2, |t| (t, 0.0), 0.0, 3.0, &[]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one radio")]
    fn zero_radios_rejected() {
        ScannerConfig::new(0, RadioPlacement::FrontPanel, vec![0]);
    }
}

//! Transient occlusion events: big vehicles passing by (§VI-C).
//!
//! The paper's video analysis attributes most large SYN-point errors to a
//! large vehicle (bus, truck) driving alongside and shadowing the scanning
//! radios. We model an occlusion as a time interval during which every
//! measured channel suffers an extra attenuation.

use serde::{Deserialize, Serialize};

/// One passing-vehicle occlusion event affecting a scanner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occlusion {
    /// Event start, seconds.
    pub start_s: f64,
    /// Event end, seconds.
    pub end_s: f64,
    /// Extra attenuation applied while the event is active, dB.
    pub loss_db: f32,
}

impl Occlusion {
    /// True when the event is active at time `t`.
    #[inline]
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }

    /// Total extra loss from a set of events at time `t` (overlapping
    /// events stack — two trucks are worse than one).
    pub fn total_loss_db(events: &[Occlusion], t: f64) -> f32 {
        events
            .iter()
            .filter(|e| e.active_at(t))
            .map(|e| e.loss_db)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_window_is_half_open() {
        let o = Occlusion {
            start_s: 10.0,
            end_s: 20.0,
            loss_db: 12.0,
        };
        assert!(!o.active_at(9.999));
        assert!(o.active_at(10.0));
        assert!(o.active_at(19.999));
        assert!(!o.active_at(20.0));
    }

    #[test]
    fn losses_stack() {
        let events = [
            Occlusion {
                start_s: 0.0,
                end_s: 10.0,
                loss_db: 8.0,
            },
            Occlusion {
                start_s: 5.0,
                end_s: 15.0,
                loss_db: 6.0,
            },
        ];
        assert_eq!(Occlusion::total_loss_db(&events, 2.0), 8.0);
        assert_eq!(Occlusion::total_loss_db(&events, 7.0), 14.0);
        assert_eq!(Occlusion::total_loss_db(&events, 12.0), 6.0);
        assert_eq!(Occlusion::total_loss_db(&events, 20.0), 0.0);
        assert_eq!(Occlusion::total_loss_db(&[], 5.0), 0.0);
    }
}

//! Seeded cell-site deployment along a road corridor.
//!
//! Real GSM coverage comes from base-station *sites*, each hosting several
//! transceivers (one BCCH carrier plus traffic carriers) on distinct
//! ARFCNs; carriers transmit continuously, which is what makes per-channel
//! RSSI a stable function of location. Frequencies are reused between
//! distant sites; a receiver effectively hears the strongest co-channel
//! carrier (capture effect).
//!
//! We deploy sites with an environment-dependent linear density, give each
//! site 2–6 carriers drawn round-robin from the active subset of the band
//! (the paper's prototype scans a 115-channel active subset of the 194,
//! §VI-A), and let distant sites reuse channels. TX powers are calibrated
//! so that typical received levels sit in the −70…−100 dBm range the
//! paper's Fig. 1 colour scale shows.

use crate::noise::splitmix64;
use crate::params::PropagationParams;
use serde::{Deserialize, Serialize};

/// One GSM carrier (a transceiver at a site).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tower {
    /// Position in the local metre frame (x along the corridor, y across).
    pub pos: (f64, f64),
    /// Dense channel index of this carrier.
    pub channel: usize,
    /// Effective radiated power at the 10 m reference distance, dBm.
    pub tx_power_dbm: f64,
}

/// Deterministically deploys carriers for a corridor of `corridor_len_m`
/// metres (x ∈ [0, corridor_len_m]) in a band of `n_channels` channels.
///
/// Site count follows `params.tower_density_per_km` (sites per km); each
/// site hosts 2–6 carriers; channels cycle round-robin through a seeded
/// permutation of the active subset, so every active channel is served and
/// distant sites reuse frequencies.
pub fn deploy_towers(
    seed: u64,
    corridor_len_m: f64,
    n_channels: usize,
    params: &PropagationParams,
) -> Vec<Tower> {
    let n_active = ((n_channels as f64) * params.active_channel_fraction).round() as usize;
    let n_active = n_active.clamp(1, n_channels);
    let n_sites = ((corridor_len_m / 1000.0) * params.tower_density_per_km)
        .ceil()
        .max(1.0) as usize;

    // Seeded permutation of the band; the first n_active entries are the
    // active subset.
    let mut channels: Vec<usize> = (0..n_channels).collect();
    let mut h = splitmix64(seed ^ 0xC0FF_EE00);
    for i in 0..n_channels.saturating_sub(1) {
        h = splitmix64(h);
        let j = i + (h as usize) % (n_channels - i);
        channels.swap(i, j);
    }
    channels.truncate(n_active);

    let u = |h: &mut u64| {
        *h = splitmix64(*h);
        *h as f64 / u64::MAX as f64
    };

    let mut rng = splitmix64(seed ^ 0xBEEF_CAFE);
    let mut towers = Vec::new();
    let mut next_channel = 0usize;
    for _ in 0..n_sites {
        // Sites scatter around the corridor, 30 m to 1.2 km off-axis.
        let x = u(&mut rng) * corridor_len_m;
        let side = if u(&mut rng) < 0.5 { -1.0 } else { 1.0 };
        let y = side * (30.0 + u(&mut rng) * 1_170.0);
        let carriers = 2 + (u(&mut rng) * 5.0) as usize; // 2..=6
        let site_power = 8.0 + (u(&mut rng) - 0.5) * 10.0; // 3..13 dBm at 10 m
        for c in 0..carriers {
            let channel = channels[next_channel % channels.len()];
            next_channel += 1;
            // The BCCH carrier (first) runs at full site power; traffic
            // carriers a couple of dB lower.
            let tx = if c == 0 { site_power } else { site_power - 2.0 };
            towers.push(Tower {
                pos: (x, y),
                channel,
                tx_power_dbm: tx,
            });
        }
    }
    towers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnvironmentClass;
    use std::collections::HashSet;

    #[test]
    fn deployment_is_deterministic() {
        let p = EnvironmentClass::SemiOpen.params();
        let a = deploy_towers(42, 5_000.0, 194, &p);
        let b = deploy_towers(42, 5_000.0, 194, &p);
        assert_eq!(a, b);
        let c = deploy_towers(43, 5_000.0, 194, &p);
        assert_ne!(a, c);
    }

    #[test]
    fn carrier_count_scales_with_length_and_class() {
        let open = EnvironmentClass::Open.params();
        let close = EnvironmentClass::Close.params();
        let a = deploy_towers(1, 10_000.0, 194, &open);
        let b = deploy_towers(1, 10_000.0, 194, &close);
        // 3 vs 6 sites/km over 10 km, 2–6 carriers per site.
        assert!(a.len() >= 60 && a.len() <= 180, "open carriers {}", a.len());
        assert!(
            b.len() > a.len(),
            "close ({}) should out-deploy open ({})",
            b.len(),
            a.len()
        );
        let short = deploy_towers(1, 100.0, 194, &open);
        assert!(!short.is_empty(), "at least one site");
    }

    #[test]
    fn channels_stay_in_active_subset() {
        let p = EnvironmentClass::Close.params();
        let n_active = (194.0 * p.active_channel_fraction).round() as usize;
        let towers = deploy_towers(9, 20_000.0, 194, &p);
        let distinct: HashSet<usize> = towers.iter().map(|t| t.channel).collect();
        assert!(distinct.len() <= n_active);
        assert!(distinct.iter().all(|&c| c < 194));
        // A long corridor serves (nearly) the whole active subset.
        assert!(
            distinct.len() as f64 >= n_active as f64 * 0.9,
            "{} of {} active channels served",
            distinct.len(),
            n_active
        );
    }

    #[test]
    fn distant_sites_reuse_channels() {
        let p = EnvironmentClass::SemiOpen.params();
        let towers = deploy_towers(3, 40_000.0, 64, &p);
        let distinct: HashSet<usize> = towers.iter().map(|t| t.channel).collect();
        assert!(
            towers.len() > distinct.len(),
            "a 40 km corridor must reuse frequencies ({} carriers, {} channels)",
            towers.len(),
            distinct.len()
        );
    }

    #[test]
    fn positions_and_power_in_expected_ranges() {
        let p = EnvironmentClass::SemiOpen.params();
        for t in deploy_towers(3, 4_000.0, 194, &p) {
            assert!((0.0..=4_000.0).contains(&t.pos.0));
            assert!(t.pos.1.abs() >= 30.0 && t.pos.1.abs() <= 1_200.0);
            assert!(
                (0.0..=14.0).contains(&t.tx_power_dbm),
                "tx {}",
                t.tx_power_dbm
            );
        }
    }

    #[test]
    fn sites_host_multiple_carriers() {
        let p = EnvironmentClass::SemiOpen.params();
        let towers = deploy_towers(5, 6_000.0, 194, &p);
        // Group by position: at least one site with ≥2 carriers.
        let mut sites: Vec<(f64, f64)> = towers.iter().map(|t| t.pos).collect();
        sites.dedup();
        assert!(
            sites.len() < towers.len(),
            "every site has a single carrier?"
        );
    }
}

//! Propagation parameters per urban environment class.
//!
//! The paper groups its 97 km experiment route into three environment types
//! (§VI-A): *open* (8-lane majors, elevated roads, 2-lane suburban), *semi-
//! open* (4-lane surface roads among buildings and trees) and *close* (under
//! elevated roads). Each class gets a parameter set for the composed RSSI
//! field; values are standard urban-propagation figures (log-distance path
//! loss with log-normal shadowing à la COST-231/Gudmundson) calibrated so
//! the simulated field reproduces the paper's Figs. 2–4 statistics.

use serde::{Deserialize, Serialize};

/// The three radio environment classes of §VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvironmentClass {
    /// Open roads: wide majors, elevated roads, suburban 2-lane roads.
    Open,
    /// Semi-open: 4-lane surface roads with surrounding buildings/trees.
    SemiOpen,
    /// Close: under elevated roads — the harshest GSM (and GPS) setting.
    Close,
}

impl EnvironmentClass {
    /// All classes, in increasing order of harshness.
    pub const ALL: [EnvironmentClass; 3] = [
        EnvironmentClass::Open,
        EnvironmentClass::SemiOpen,
        EnvironmentClass::Close,
    ];

    /// The default propagation parameters for this class.
    pub fn params(self) -> PropagationParams {
        match self {
            EnvironmentClass::Open => PropagationParams {
                path_loss_exponent: 2.8,
                shadow_sigma_db: 5.0,
                shadow_corr_m: 60.0,
                fast_sigma_db: 6.5,
                fast_corr_m: 0.45,
                temporal_slow_sigma_db: 2.0,
                temporal_slow_corr_s: 300.0,
                temporal_fast_sigma_db: 1.0,
                temporal_fast_corr_s: 10.0,
                burst_prob_per_slot: 0.010,
                burst_sigma_db: 14.0,
                burst_slot_s: 40.0,
                extra_attenuation_db: 0.0,
                tower_density_per_km: 3.0,
                active_channel_fraction: 0.35,
            },
            EnvironmentClass::SemiOpen => PropagationParams {
                path_loss_exponent: 3.3,
                shadow_sigma_db: 7.5,
                shadow_corr_m: 35.0,
                fast_sigma_db: 8.0,
                fast_corr_m: 0.40,
                temporal_slow_sigma_db: 2.5,
                temporal_slow_corr_s: 240.0,
                temporal_fast_sigma_db: 1.4,
                temporal_fast_corr_s: 8.0,
                burst_prob_per_slot: 0.018,
                burst_sigma_db: 15.0,
                burst_slot_s: 40.0,
                extra_attenuation_db: 0.0,
                tower_density_per_km: 5.0,
                active_channel_fraction: 0.45,
            },
            EnvironmentClass::Close => PropagationParams {
                path_loss_exponent: 3.8,
                shadow_sigma_db: 9.5,
                shadow_corr_m: 18.0,
                fast_sigma_db: 9.0,
                fast_corr_m: 0.35,
                temporal_slow_sigma_db: 3.2,
                temporal_slow_corr_s: 180.0,
                temporal_fast_sigma_db: 1.8,
                temporal_fast_corr_s: 6.0,
                burst_prob_per_slot: 0.040,
                burst_sigma_db: 16.0,
                burst_slot_s: 40.0,
                // The deck overhead blocks most macro cells: few carriers
                // survive, and those that do arrive heavily attenuated.
                extra_attenuation_db: 9.0,
                tower_density_per_km: 5.0,
                active_channel_fraction: 0.45,
            },
        }
    }
}

impl std::fmt::Display for EnvironmentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EnvironmentClass::Open => "open",
            EnvironmentClass::SemiOpen => "semi-open",
            EnvironmentClass::Close => "close",
        };
        f.write_str(s)
    }
}

/// Full parameter set of the composed RSSI field for one environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationParams {
    /// Log-distance path-loss exponent `n` in `PL = PL₀ + 10·n·log₁₀(d/d₀)`.
    pub path_loss_exponent: f64,
    /// Standard deviation of the log-normal shadowing field, dB.
    pub shadow_sigma_db: f64,
    /// Shadowing decorrelation distance (Gudmundson), metres.
    pub shadow_corr_m: f64,
    /// Standard deviation of the small-scale fading field, dB.
    pub fast_sigma_db: f64,
    /// Small-scale fading correlation length, metres (≈ a wavelength or two
    /// at 900 MHz).
    pub fast_corr_m: f64,
    /// Slow temporal drift standard deviation, dB.
    pub temporal_slow_sigma_db: f64,
    /// Slow temporal drift correlation time, seconds.
    pub temporal_slow_corr_s: f64,
    /// Fast temporal jitter standard deviation, dB (measurement noise plus
    /// short-term channel activity).
    pub temporal_fast_sigma_db: f64,
    /// Fast temporal jitter correlation time, seconds.
    pub temporal_fast_corr_s: f64,
    /// Probability that a channel suffers an interference burst in any one
    /// burst slot.
    pub burst_prob_per_slot: f64,
    /// Burst amplitude standard deviation, dB (bursts are large — they model
    /// traffic-channel activity and co-channel interference turning on/off).
    pub burst_sigma_db: f64,
    /// Duration of one burst slot, seconds.
    pub burst_slot_s: f64,
    /// Flat extra attenuation of every carrier (e.g. the deck of an elevated
    /// road overhead), dB.
    pub extra_attenuation_db: f64,
    /// Cell-tower density along the corridor, towers per km.
    pub tower_density_per_km: f64,
    /// Fraction of band channels hosting an active carrier in this region.
    pub active_channel_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_order_by_harshness() {
        let o = EnvironmentClass::Open.params();
        let s = EnvironmentClass::SemiOpen.params();
        let c = EnvironmentClass::Close.params();
        assert!(o.path_loss_exponent < s.path_loss_exponent);
        assert!(s.path_loss_exponent < c.path_loss_exponent);
        assert!(o.shadow_sigma_db < s.shadow_sigma_db);
        assert!(s.shadow_sigma_db < c.shadow_sigma_db);
        assert!(o.shadow_corr_m > s.shadow_corr_m);
        assert!(c.extra_attenuation_db > 0.0);
        assert_eq!(o.extra_attenuation_db, 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(EnvironmentClass::Open.to_string(), "open");
        assert_eq!(EnvironmentClass::SemiOpen.to_string(), "semi-open");
        assert_eq!(EnvironmentClass::Close.to_string(), "close");
    }

    #[test]
    fn all_lists_every_class() {
        assert_eq!(EnvironmentClass::ALL.len(), 3);
    }

    #[test]
    fn params_serialize_roundtrip() {
        let p = EnvironmentClass::SemiOpen.params();
        let json = serde_json::to_string(&p).unwrap();
        let back: PropagationParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

//! Property-based tests of the GSM radio-environment simulator.

use gsm_sim::{
    scan_trace, EnvironmentClass, GsmEnvironment, Occlusion, RadioPlacement, ScannerConfig,
    NOISE_FLOOR_DBM,
};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = EnvironmentClass> {
    prop_oneof![
        Just(EnvironmentClass::Open),
        Just(EnvironmentClass::SemiOpen),
        Just(EnvironmentClass::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn field_is_a_pure_function(
        seed in 0u64..1000,
        class in any_class(),
        ch in 0usize..32,
        x in 0.0f64..5000.0,
        y in -20.0f64..20.0,
        t in 0.0f64..3600.0,
    ) {
        let env = GsmEnvironment::new(seed, class, 5_000.0, 32);
        prop_assert_eq!(env.rssi_dbm(ch, (x, y), t), env.rssi_dbm(ch, (x, y), t));
    }

    #[test]
    fn rssi_never_much_below_the_floor(
        seed in 0u64..200,
        class in any_class(),
        x in 0.0f64..5000.0,
        t in 0.0f64..3600.0,
    ) {
        let env = GsmEnvironment::new(seed, class, 5_000.0, 32);
        for ch in 0..32 {
            let v = env.rssi_dbm(ch, (x, 0.0), t);
            prop_assert!(v >= NOISE_FLOOR_DBM - 4.0, "ch{ch} = {v}");
            prop_assert!(v <= 0.0, "implausibly strong carrier: {v} dBm");
        }
    }

    #[test]
    fn field_is_continuous_in_space(
        seed in 0u64..200,
        class in any_class(),
        x in 10.0f64..4990.0,
    ) {
        let env = GsmEnvironment::new(seed, class, 5_000.0, 16);
        for ch in env.active_channels() {
            let a = env.rssi_dbm(ch, (x, 0.0), 0.0);
            let b = env.rssi_dbm(ch, (x + 0.05, 0.0), 0.0);
            prop_assert!((a - b).abs() < 4.0, "5 cm step moved ch{ch} by {}", (a - b).abs());
        }
    }

    #[test]
    fn scan_trace_samples_are_ordered_in_band_and_in_window(
        seed in 0u64..100,
        n_radios in 1usize..5,
        t0 in 0.0f64..100.0,
        dur in 0.2f64..5.0,
    ) {
        let env = GsmEnvironment::new(seed, EnvironmentClass::SemiOpen, 2_000.0, 24);
        let channels: Vec<usize> = (0..24).collect();
        let cfg = ScannerConfig::new(n_radios, RadioPlacement::FrontPanel, channels.clone())
            .with_seed(seed);
        let samples = scan_trace(&env, &cfg, |t| (t * 10.0, 0.0), t0, t0 + dur, &[]);
        prop_assert!(samples.windows(2).all(|w| w[0].timestamp_s <= w[1].timestamp_s));
        for s in &samples {
            prop_assert!(s.timestamp_s > t0 && s.timestamp_s <= t0 + dur);
            prop_assert!(channels.contains(&s.channel));
            prop_assert!(s.rssi_dbm >= NOISE_FLOOR_DBM - 1e-3);
        }
        // Sample count ≈ radios × duration / dwell.
        let expect = (n_radios as f64 * dur / cfg.channel_scan_time_s) as i64;
        prop_assert!((samples.len() as i64 - expect).abs() <= n_radios as i64 + 1,
            "{} samples vs ≈{expect}", samples.len());
    }

    #[test]
    fn occlusion_only_lowers_rssi(
        seed in 0u64..100,
        loss in 1.0f32..30.0,
    ) {
        let env = GsmEnvironment::new(seed, EnvironmentClass::Open, 2_000.0, 16);
        let cfg = ScannerConfig::new(1, RadioPlacement::FrontPanel, (0..16).collect());
        let occl = [Occlusion { start_s: 0.0, end_s: 10.0, loss_db: loss }];
        let clean = scan_trace(&env, &cfg, |_| (500.0, 0.0), 0.0, 10.0, &[]);
        let shadowed = scan_trace(&env, &cfg, |_| (500.0, 0.0), 0.0, 10.0, &occl);
        for (c, s) in clean.iter().zip(&shadowed) {
            prop_assert!(s.rssi_dbm <= c.rssi_dbm + 1e-3,
                "occlusion raised RSSI: {} → {}", c.rssi_dbm, s.rssi_dbm);
        }
    }

    #[test]
    fn environment_survives_serde(seed in 0u64..50, class in any_class()) {
        let env = GsmEnvironment::new(seed, class, 1_000.0, 16);
        let json = serde_json::to_string(&env).unwrap();
        let back: GsmEnvironment = serde_json::from_str(&json).unwrap();
        for ch in 0..16 {
            prop_assert_eq!(
                env.rssi_dbm(ch, (400.0, 0.0), 7.0),
                back.rssi_dbm(ch, (400.0, 0.0), 7.0)
            );
        }
    }
}

//! Golden-trace regression fixture.
//!
//! A small deterministic scenario trace is committed under
//! `tests/fixtures/golden_trace.json`. These tests pin the whole
//! trace-driven pipeline end to end:
//!
//! * `golden_trace_fixture_is_bit_stable` regenerates the trace from its
//!   seed and asserts the serialisation is **byte-identical** to the
//!   committed fixture — any drift in `tracegen`, the binder, the motion
//!   model or the JSON codec shows up here, loudly.
//! * `golden_trace_queries_are_stable` replays RUPS queries against the
//!   loaded fixture and checks the fixes against pinned values — any drift
//!   in the SYN search or the resolver shows up here.
//!
//! To regenerate the fixture after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rups-eval --test golden_trace
//! ```

use rups_core::config::RupsConfig;
use rups_eval::queries::{run_queries, sample_query_times};
use rups_eval::replay::{load_trace, save_trace};
use rups_eval::tracegen::{generate, ScenarioTrace, TraceConfig};
use urban_sim::road::RoadClass;

const GOLDEN_SEED: u64 = 2016;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace.json"
);

/// A deliberately small scenario (narrow band, one-minute drive) so the
/// committed fixture stays reviewable in size while still exercising the
/// full generate → bind → occlude pipeline.
fn golden_config() -> TraceConfig {
    TraceConfig {
        n_channels: 24,
        scanned_channels: 20,
        route_len_m: 900.0,
        duration_s: 60.0,
        ..TraceConfig::quick(GOLDEN_SEED, RoadClass::Urban4Lane)
    }
}

fn regenerate() -> ScenarioTrace {
    generate(&golden_config())
}

#[test]
fn golden_trace_fixture_is_bit_stable() {
    let trace = regenerate();
    let json = serde_json::to_string(&trace).expect("trace must serialise");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let dir = std::path::Path::new(FIXTURE).parent().unwrap();
        std::fs::create_dir_all(dir).unwrap();
        save_trace(&trace, FIXTURE).unwrap();
    }
    let on_disk = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1");
    // Deliberately not assert_eq!: on drift that would dump megabytes.
    assert!(
        on_disk == json,
        "trace generation no longer reproduces the golden fixture \
         byte-for-byte (lengths: fixture {} vs regenerated {}); if the \
         change is intentional, refresh with UPDATE_GOLDEN=1",
        on_disk.len(),
        json.len()
    );
}

#[test]
fn golden_trace_queries_are_stable() {
    let trace = load_trace(FIXTURE).expect("fixture missing — regenerate with UPDATE_GOLDEN=1");
    let cfg = RupsConfig {
        n_channels: 24,
        window_channels: 20,
        ..RupsConfig::default()
    };
    let times = sample_query_times(&trace, 4, 9);
    assert_eq!(
        times,
        vec![23.0, 25.0, 34.5, 42.5],
        "query sampling drifted"
    );
    let outcomes = run_queries(&trace, &cfg, &times);

    // Pinned expectations (from the committed fixture): the two early
    // queries have too little shared context and miss; the two later ones
    // fix the gap to well under a metre. Tolerance 1e-6 absorbs the JSON
    // float round-trip, nothing more.
    let pinned: [(f64, Option<(f64, f64)>); 4] = [
        (37.672_860, None),
        (37.141_994, None),
        (
            35.634_873,
            Some((35.908_729_816_337_4, 1.265_010_946_055_015_9)),
        ),
        (
            35.085_075,
            Some((34.993_877_208_027_776, 1.334_553_783_657_208_1)),
        ),
    ];
    for (o, (truth, fix)) in outcomes.iter().zip(pinned) {
        assert!(
            (o.truth_m - truth).abs() < 1e-6,
            "t={}: ground truth drifted: {} vs pinned {truth}",
            o.t,
            o.truth_m
        );
        match (&o.fix, fix) {
            (Some(f), Some((distance_m, best_score))) => {
                assert!(
                    (f.distance_m - distance_m).abs() < 1e-6,
                    "t={}: fixed distance drifted: {} vs pinned {distance_m}",
                    o.t,
                    f.distance_m
                );
                assert!(
                    (f.best_score - best_score).abs() < 1e-6,
                    "t={}: best score drifted: {} vs pinned {best_score}",
                    o.t,
                    f.best_score
                );
                assert!(o.rde_m.is_some_and(|r| r < 0.5));
            }
            (None, None) => {}
            (got, want) => panic!("t={}: fix presence drifted: {got:?} vs {want:?}", o.t),
        }
    }
}

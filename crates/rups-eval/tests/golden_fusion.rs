//! Golden-fusion regression fixture.
//!
//! A pinned six-vehicle synthetic fusion scenario (one corrupted chord,
//! known ground truth) is solved by the `rups-fuse` Gauss–Newton pipeline
//! and the whole record — measurement graph, truth, fused solution,
//! rejections — is committed under `tests/fixtures/golden_fusion.json`.
//! The test regenerates the record from the seed and asserts the
//! serialisation is **byte-identical** to the committed fixture: any
//! drift in the synthetic generator, the edge weighting, the solver's
//! iteration order, or the outlier-rejection verdicts shows up here,
//! loudly, before it can silently reshape the eval artefacts.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rups-eval --test golden_fusion
//! ```

use rups_fuse::{generate, FusedSolution, Fuser, SynthConfig, SynthScenario};
use serde::Serialize;

const GOLDEN_SEED: u64 = 2016;
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_fusion.json"
);

/// Everything the fixture pins, in one serialisable record.
#[derive(Serialize)]
struct GoldenRecord {
    scenario: SynthScenario,
    solution: FusedSolution,
}

/// Six vehicles, six redundant chords, realistic noise, one gross
/// corrupted edge — small enough to review, rich enough that the solver
/// has to iterate, weight, and reject.
fn golden_scenario() -> SynthScenario {
    generate(&SynthConfig {
        seed: GOLDEN_SEED,
        n_nodes: 6,
        n_chords: 6,
        noise_sigma_m: 0.6,
        n_corrupt: 1,
        corrupt_offset_m: 60.0,
        ..SynthConfig::default()
    })
}

fn solve(scenario: &SynthScenario) -> FusedSolution {
    Fuser::default()
        .solve(&scenario.graph)
        .expect("golden scenario is connected and non-singular")
}

#[test]
fn golden_fusion_fixture_is_bit_stable() {
    let scenario = golden_scenario();
    let solution = solve(&scenario);
    let record = GoldenRecord { scenario, solution };
    let json = serde_json::to_string_pretty(&record).expect("record must serialise");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let dir = std::path::Path::new(FIXTURE).parent().unwrap();
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(FIXTURE, &json).unwrap();
    }
    let on_disk = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — regenerate with UPDATE_GOLDEN=1");
    // Deliberately not assert_eq!: on drift that would dump the full JSON.
    assert!(
        on_disk == json,
        "fusion no longer reproduces the golden fixture byte-for-byte \
         (lengths: fixture {} vs regenerated {}); if the change is \
         intentional, refresh with UPDATE_GOLDEN=1",
        on_disk.len(),
        json.len()
    );
}

#[test]
fn golden_fusion_semantics_are_stable() {
    let scenario = golden_scenario();
    let solution = solve(&scenario);

    // The solver converges and the one corrupted chord is rejected —
    // matched by endpoints *and* measured value, so a rejection of some
    // other edge between the same pair cannot pass.
    assert!(solution.converged);
    assert_eq!(solution.rejected.len(), 1, "exactly one edge rejected");
    let corrupt = scenario.graph.edges()[scenario.corrupted[0]];
    let r = &solution.rejected[0];
    assert_eq!((r.a, r.b), (corrupt.a, corrupt.b));
    assert!((r.measured_m - corrupt.measured_m).abs() < 1e-12);

    // Every fused displacement lands within the honest-noise envelope;
    // the 60 m corruption must not leak.
    for &(a, _) in &scenario.truth {
        for &(b, _) in &scenario.truth {
            let got = solution.displacement(a, b).unwrap();
            let want = scenario.truth_displacement(a, b).unwrap();
            assert!(
                (got - want).abs() < 5.0,
                "pair ({a},{b}): fused {got} vs truth {want}"
            );
        }
    }
}

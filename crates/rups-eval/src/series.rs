//! Data series, CDFs and text tables for the experiment harness.
//!
//! Every reproduced figure is emitted as one or more [`Series`] plus a
//! rendered text table, and can be dumped as JSON for external plotting.

use serde::{Deserialize, Serialize};

/// One labelled (x, y) series of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates.
    pub y: Vec<f64>,
}

impl Series {
    /// Builds a series; panics when x and y lengths differ.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series axes must align");
        Self {
            label: label.into(),
            x,
            y,
        }
    }

    /// The empirical CDF of the samples: x = sorted values, y = cumulative
    /// probability.
    pub fn cdf(label: impl Into<String>, mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let y = (1..=n).map(|i| i as f64 / n as f64).collect();
        Self {
            label: label.into(),
            x: samples,
            y,
        }
    }

    /// Linear interpolation of the CDF at `x` (fraction of samples ≤ x).
    /// Only meaningful for series built with [`Series::cdf`].
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.x.is_empty() {
            return 0.0;
        }
        let n = self.x.partition_point(|&v| v <= x);
        n as f64 / self.x.len() as f64
    }

    /// Percentile (0..=100) of a CDF series.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.x.is_empty(), "empty series has no percentiles");
        let idx = ((p / 100.0) * (self.x.len() - 1) as f64).round() as usize;
        self.x[idx.min(self.x.len() - 1)]
    }
}

/// Mean, standard deviation, and a 95 % normal-approximation confidence
/// half-width of a sample set (the error bars of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// 95 % confidence half-width (1.96·σ/√n).
    pub ci95: f64,
}

impl SampleStats {
    /// Computes the statistics; `None` on empty input.
    pub fn of(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        Some(SampleStats {
            n,
            mean,
            std,
            ci95: 1.96 * std / (n as f64).sqrt(),
        })
    }
}

/// A reproduced figure/table: id, title, series and free-form notes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Paper identifier, e.g. "fig2" or "sec5a".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The data series of the figure.
    pub series: Vec<Series>,
    /// Key observations / headline numbers, one per line.
    pub notes: Vec<String>,
}

impl Figure {
    /// Renders the figure as a text block: title, notes, and per-series
    /// summaries sampled at up to `max_points` x positions.
    pub fn render_text(&self, max_points: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        for s in &self.series {
            let _ = writeln!(out, "  series: {}", s.label);
            if s.x.is_empty() {
                let _ = writeln!(out, "    (empty)");
                continue;
            }
            let step = (s.x.len() / max_points.max(1)).max(1);
            let mut line = String::from("    ");
            for i in (0..s.x.len()).step_by(step) {
                let _ = write!(line, "({:.3}, {:.3}) ", s.x[i], s.y[i]);
                if line.len() > 90 {
                    let _ = writeln!(out, "{line}");
                    line = String::from("    ");
                }
            }
            if !line.trim().is_empty() {
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let s = Series::cdf("t", vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(s.x, vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.y, vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.75);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn percentiles() {
        let s = Series::cdf("t", (1..=100).map(|i| i as f64).collect());
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let median = s.percentile(50.0);
        assert!((49.0..=51.0).contains(&median));
    }

    #[test]
    fn stats_match_hand_computation() {
        let st = SampleStats::of(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(st.n, 3);
        assert!((st.mean - 4.0).abs() < 1e-12);
        assert!((st.std - 2.0).abs() < 1e-12);
        assert!((st.ci95 - 1.96 * 2.0 / 3.0f64.sqrt()).abs() < 1e-12);
        assert!(SampleStats::of(&[]).is_none());
        let single = SampleStats::of(&[5.0]).unwrap();
        assert_eq!(single.std, 0.0);
    }

    #[test]
    #[should_panic(expected = "axes must align")]
    fn mismatched_series_rejected() {
        Series::new("x", vec![1.0], vec![]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["env", "mean"],
            &[
                vec!["open".into(), "3.40".into()],
                vec!["under elevated".into(), "6.90".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("env"));
        assert!(lines[3].contains("6.90"));
        // Columns align: "mean" and the numbers start at the same offset.
        let col = lines[0].find("mean").unwrap();
        assert_eq!(lines[2].find("3.40").unwrap(), col);
    }

    #[test]
    fn figure_renders_without_panicking() {
        let fig = Figure {
            id: "fig0".into(),
            title: "test".into(),
            series: vec![
                Series::cdf("a", vec![1.0, 2.0]),
                Series::new("b", vec![], vec![]),
            ],
            notes: vec!["note".into()],
        };
        let txt = fig.render_text(10);
        assert!(txt.contains("fig0"));
        assert!(txt.contains("note"));
        assert!(txt.contains("(empty)"));
    }

    #[test]
    fn figure_serialises() {
        let fig = Figure {
            id: "fig2".into(),
            title: "stability".into(),
            series: vec![Series::cdf("s", vec![0.5, 0.9])],
            notes: vec![],
        };
        let json = serde_json::to_string(&fig).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(fig, back);
    }
}

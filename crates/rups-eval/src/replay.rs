//! Trace persistence: save generated scenario traces to disk and replay
//! them later.
//!
//! The paper's methodology is *trace-driven*: collect once, evaluate many
//! times. This module gives the synthetic equivalent the same workflow —
//! a [`ScenarioTrace`] serialises to a single JSON file (the whole thing is
//! deterministic data: ground-truth motion, metre marks, bound RSSI
//! matrices, occlusion schedule), so parameter studies can reuse a trace
//! without regenerating it, and traces can be shared as artifacts.

use crate::tracegen::ScenarioTrace;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Errors from trace persistence.
#[derive(Debug)]
pub enum ReplayError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialisation failure.
    Codec(serde_json::Error),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            ReplayError::Codec(e) => write!(f, "trace (de)serialisation failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

impl From<serde_json::Error> for ReplayError {
    fn from(e: serde_json::Error) -> Self {
        ReplayError::Codec(e)
    }
}

/// Writes a trace to `path` as JSON.
pub fn save_trace(trace: &ScenarioTrace, path: impl AsRef<Path>) -> Result<(), ReplayError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), trace)?;
    Ok(())
}

/// Loads a trace previously written by [`save_trace`].
pub fn load_trace(path: impl AsRef<Path>) -> Result<ScenarioTrace, ReplayError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{query_at, sample_query_times};
    use crate::tracegen::{generate, TraceConfig};
    use rups_core::config::RupsConfig;
    use urban_sim::road::RoadClass;

    #[test]
    fn saved_trace_replays_identically() {
        let trace = generate(&TraceConfig::quick(77, RoadClass::Urban4Lane));
        let dir = std::env::temp_dir().join("rups_replay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save_trace(&trace, &path).unwrap();
        let loaded = load_trace(&path).unwrap();

        // Structure survives.
        assert_eq!(loaded.config, trace.config);
        assert_eq!(loaded.follower.len(), trace.follower.len());
        assert_eq!(loaded.occlusions, trace.occlusions);

        // Queries against the reloaded trace produce identical outcomes.
        let cfg = RupsConfig {
            n_channels: 64,
            window_channels: 24,
            max_context_m: 600,
            ..RupsConfig::default()
        };
        for &t in sample_query_times(&trace, 4, 1).iter() {
            let a = query_at(&trace, &cfg, t);
            let b = query_at(&loaded, &cfg, t);
            // JSON number formatting may perturb the last float bit; the
            // replayed outcomes must agree to far below measurement noise.
            match (a.fix, b.fix) {
                (Some(fa), Some(fb)) => {
                    assert!((fa.distance_m - fb.distance_m).abs() < 1e-6)
                }
                (None, None) => {}
                other => panic!("fix presence diverged: {other:?}"),
            }
            assert!((a.truth_m - b.truth_m).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_errors_are_reported() {
        assert!(matches!(
            load_trace("/nonexistent/trace.json"),
            Err(ReplayError::Io(_))
        ));
        let dir = std::env::temp_dir().join("rups_replay_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json at all").unwrap();
        let e = match load_trace(&path) {
            Err(e) => e,
            Ok(_) => panic!("garbage must not parse"),
        };
        assert!(matches!(e, ReplayError::Codec(_)));
        assert!(e.to_string().contains("serialisation"));
        std::fs::remove_file(&path).ok();
    }
}

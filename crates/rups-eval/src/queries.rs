//! Query execution: ask RUPS (and GPS) for the gap at sampled times and
//! score the answers against ground truth.

use crate::tracegen::ScenarioTrace;
use gps_sim::{relative_distance_gps, GpsFix, GpsReceiver};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use rayon::prelude::*;
use rups_core::config::RupsConfig;
use rups_core::pipeline::DistanceFix;
use rups_core::resolve;
use rups_core::syn;
use serde::{Deserialize, Serialize};

/// Outcome of one RUPS relative-distance query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Query time, seconds.
    pub t: f64,
    /// Ground-truth gap at the query time, metres.
    pub truth_m: f64,
    /// The fix, when RUPS found SYN points.
    pub fix: Option<DistanceFix>,
    /// Ground-truth position error of each found SYN point, metres
    /// (|true arc length at our window end − true arc length at theirs|).
    pub syn_errors_m: Vec<f64>,
    /// Relative distance error |estimate − truth|, when a fix exists.
    pub rde_m: Option<f64>,
}

/// Runs one RUPS query at time `t`: follower (rear car) asks for the gap to
/// the leader, exactly as in the paper's experiments.
pub fn query_at(trace: &ScenarioTrace, cfg: &RupsConfig, t: f64) -> QueryOutcome {
    let truth_m = trace.truth_gap_at(t);
    let interp = cfg.interpolate_missing;
    let Some((ours, ours_true_s)) =
        trace
            .follower
            .context_at(t, cfg.max_context_m, interp, Some(2))
    else {
        return QueryOutcome {
            t,
            truth_m,
            fix: None,
            syn_errors_m: vec![],
            rde_m: None,
        };
    };
    let Some((theirs, theirs_true_s)) =
        trace
            .leader
            .context_at(t, cfg.max_context_m, interp, Some(1))
    else {
        return QueryOutcome {
            t,
            truth_m,
            fix: None,
            syn_errors_m: vec![],
            rde_m: None,
        };
    };

    let points = match syn::find_syn_points(&ours.gsm, &theirs.gsm, cfg) {
        Ok(p) => p,
        Err(_) => {
            return QueryOutcome {
                t,
                truth_m,
                fix: None,
                syn_errors_m: vec![],
                rde_m: None,
            }
        }
    };
    let syn_errors_m: Vec<f64> = points
        .iter()
        .map(|p| {
            let s_self = ours_true_s[p.self_end - 1];
            let s_other = theirs_true_s[p.other_end - 1];
            (s_self - s_other).abs()
        })
        .collect();
    let (distance_m, estimates_m) = match resolve::aggregate_distance(
        &points,
        ours.gsm.len(),
        theirs.gsm.len(),
        cfg.aggregation,
    ) {
        Ok(x) => x,
        Err(_) => {
            return QueryOutcome {
                t,
                truth_m,
                fix: None,
                syn_errors_m,
                rde_m: None,
            }
        }
    };
    let best_score = points
        .iter()
        .map(|p| p.score)
        .fold(f64::NEG_INFINITY, f64::max);
    let rde = (distance_m - truth_m).abs();
    QueryOutcome {
        t,
        truth_m,
        fix: Some(DistanceFix {
            distance_m,
            syn_points: points,
            estimates_m,
            best_score,
        }),
        syn_errors_m,
        rde_m: Some(rde),
    }
}

/// Samples `n` query times at which both vehicles are moving and enough
/// context has accumulated (the paper randomly selects 500–1000 points on
/// the first car's trajectory).
pub fn sample_query_times(trace: &ScenarioTrace, n: usize, seed: u64) -> Vec<f64> {
    // Skip the first quarter of the drive so contexts are warm.
    let t0 = trace.config.duration_s * 0.25;
    let t1 = trace.config.duration_s - 5.0;
    let mut candidates = trace.scenario.moving_times(t0, t1, 0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(n);
    candidates.sort_by(|a, b| a.total_cmp(b));
    candidates
}

/// Runs many queries across the rayon pool.
pub fn run_queries(trace: &ScenarioTrace, cfg: &RupsConfig, times: &[f64]) -> Vec<QueryOutcome> {
    times.par_iter().map(|&t| query_at(trace, cfg, t)).collect()
}

/// GPS baseline: 1 Hz fixes for both vehicles over the whole drive, then
/// gap estimates at the query times using the latest fix at or before each
/// query (stale fixes persist through outages, as a real tracker would).
pub struct GpsBaseline {
    leader_fixes: Vec<Option<GpsFix>>,
    follower_fixes: Vec<Option<GpsFix>>,
}

impl GpsBaseline {
    /// Simulates both receivers along the trace.
    pub fn simulate(trace: &ScenarioTrace, seed: u64) -> GpsBaseline {
        let n = trace.config.duration_s.ceil() as usize;
        let mut rx_l = GpsReceiver::new(trace.config.road, seed ^ 0x6751);
        let mut rx_f = GpsReceiver::new(trace.config.road, seed ^ 0x6752);
        let mut leader_fixes = Vec::with_capacity(n);
        let mut follower_fixes = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64;
            let pl = trace.scenario.leader.pos_at_time(
                &trace.route,
                t,
                trace.scenario.leader_lane_offset_m,
            );
            let pf = trace.scenario.follower.pos_at_time(
                &trace.route,
                t,
                trace.scenario.follower_lane_offset_m,
            );
            leader_fixes.push(rx_l.fix(t, pl));
            follower_fixes.push(rx_f.fix(t, pf));
        }
        GpsBaseline {
            leader_fixes,
            follower_fixes,
        }
    }

    fn latest(fixes: &[Option<GpsFix>], t: f64) -> Option<GpsFix> {
        let idx = (t.floor() as usize).min(fixes.len().saturating_sub(1));
        (0..=idx).rev().find_map(|i| fixes[i])
    }

    /// The GPS gap estimate at time `t`, or `None` when either receiver has
    /// never had a fix.
    pub fn gap_at(&self, trace: &ScenarioTrace, t: f64) -> Option<f64> {
        let fl = Self::latest(&self.leader_fixes, t)?;
        let ff = Self::latest(&self.follower_fixes, t)?;
        let heading = trace.route.heading_at(trace.scenario.leader.distance_at(t));
        Some(relative_distance_gps(&fl, &ff, heading))
    }

    /// |GPS gap − truth| at time `t`.
    pub fn rde_at(&self, trace: &ScenarioTrace, t: f64) -> Option<f64> {
        let est = self.gap_at(trace, t)?;
        Some((est - trace.truth_gap_at(t)).abs())
    }
}

/// Convenience: mean of the non-None RDEs of a set of outcomes plus the
/// answer rate.
pub fn summarize_rde(outcomes: &[QueryOutcome]) -> (Option<f64>, f64) {
    let errs: Vec<f64> = outcomes.iter().filter_map(|o| o.rde_m).collect();
    let rate = errs.len() as f64 / outcomes.len().max(1) as f64;
    let mean = (!errs.is_empty()).then(|| errs.iter().sum::<f64>() / errs.len() as f64);
    (mean, rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::{generate, TraceConfig};
    use urban_sim::road::RoadClass;

    fn quick_cfg() -> RupsConfig {
        RupsConfig {
            n_channels: 64,
            window_channels: 32,
            max_context_m: 600,
            ..RupsConfig::default()
        }
    }

    #[test]
    fn rups_beats_random_guessing_on_quick_trace() {
        let trace = generate(&TraceConfig::quick(5, RoadClass::Urban4Lane));
        let cfg = quick_cfg();
        let times = sample_query_times(&trace, 20, 9);
        assert!(!times.is_empty());
        let outcomes = run_queries(&trace, &cfg, &times);
        let (mean, rate) = summarize_rde(&outcomes);
        assert!(rate > 0.5, "answer rate {rate}");
        let mean = mean.expect("some fixes");
        assert!(mean < 15.0, "mean RDE {mean} m");
        // SYN errors are tracked per point.
        let with_fix = outcomes.iter().find(|o| o.fix.is_some()).unwrap();
        assert_eq!(
            with_fix.syn_errors_m.len(),
            with_fix.fix.as_ref().unwrap().syn_points.len()
        );
    }

    #[test]
    fn query_before_context_returns_no_fix() {
        let trace = generate(&TraceConfig::quick(6, RoadClass::Urban4Lane));
        let cfg = quick_cfg();
        let out = query_at(&trace, &cfg, 0.0);
        assert!(out.fix.is_none());
        assert!(out.rde_m.is_none());
    }

    #[test]
    fn sample_times_are_sorted_moving_and_bounded() {
        let trace = generate(&TraceConfig::quick(7, RoadClass::Urban4Lane));
        let times = sample_query_times(&trace, 15, 3);
        assert!(times.len() <= 15);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        for &t in &times {
            assert!(t >= trace.config.duration_s * 0.25);
            assert!(trace.scenario.leader.speed_at(t) > 1.0);
        }
        // Deterministic.
        assert_eq!(times, sample_query_times(&trace, 15, 3));
    }

    #[test]
    fn gps_baseline_produces_reasonable_errors() {
        let trace = generate(&TraceConfig::quick(8, RoadClass::Urban4Lane));
        let gps = GpsBaseline::simulate(&trace, 4);
        let times = sample_query_times(&trace, 25, 5);
        let errs: Vec<f64> = times
            .iter()
            .filter_map(|&t| gps.rde_at(&trace, t))
            .collect();
        assert!(!errs.is_empty());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean > 1.0 && mean < 40.0, "GPS mean RDE {mean}");
    }

    #[test]
    fn parallel_queries_match_sequential() {
        let trace = generate(&TraceConfig::quick(9, RoadClass::Urban4Lane));
        let cfg = quick_cfg();
        let times = sample_query_times(&trace, 6, 1);
        let par = run_queries(&trace, &cfg, &times);
        let seq: Vec<QueryOutcome> = times.iter().map(|&t| query_at(&trace, &cfg, t)).collect();
        assert_eq!(par, seq);
    }
}

//! Extension experiment: RUPS for pedestrians (§VII future work).
//!
//! "Another interesting direction is to extend RUPS to users of mobile
//! devices such as pedestrians and bicyclists." The physics favour slow
//! movers: at walking pace a *single* GSM radio sweeps the whole band
//! within one metre of travel, so the missing-channel problem that forces
//! cars to carry four radios (Fig. 9) disappears. This experiment runs the
//! same single-radio tracked-pair workload at car, bicycle and pedestrian
//! speeds and reports trajectory coverage and accuracy.

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times, summarize_rde};
use crate::series::{Figure, Series};
use crate::tracegen::{generate, Mobility, TraceConfig};
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the pedestrian experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
    /// Road setting (sidewalk along a 4-lane urban street).
    pub road: RoadClass,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            road: RoadClass::Urban4Lane,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        ..Default::default()
    }
}

/// One mobility variant: (coverage, error samples, answer rate).
fn run_variant(p: &Params, mobility: Mobility) -> (f64, Vec<f64>, f64) {
    let s = &p.scale;
    let mut coverage_sum = 0.0;
    let mut all = Vec::new();
    let seeds = s.trace_seeds(0xFED);
    for &seed in &seeds {
        let trace = generate(&TraceConfig {
            n_channels: s.n_channels,
            scanned_channels: s.scanned_channels,
            route_len_m: s.route_len_m(),
            duration_s: s.duration_s,
            // The minimum hardware a phone gives you: one radio.
            leader_radios: 1,
            follower_radios: 1,
            initial_gap_m: 20.0,
            // Pedestrians do not suffer car-body occlusion.
            occlusion_rate_per_min: if mobility == Mobility::Vehicle {
                0.6
            } else {
                0.1
            },
            mobility,
            ..TraceConfig::new(seed, p.road)
        });
        coverage_sum += trace.follower.gsm.coverage();
        let times = sample_query_times(&trace, s.queries_per_seed(), s.seed ^ 0xFE1);
        all.extend(run_queries(&trace, &s.rups_config(), &times));
    }
    let (_, rate) = summarize_rde(&all);
    let errs: Vec<f64> = all.into_iter().filter_map(|o| o.rde_m).collect();
    (coverage_sum / seeds.len() as f64, errs, rate)
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let variants = [
        (Mobility::Vehicle, "car"),
        (Mobility::Bicycle, "bicycle"),
        (Mobility::Pedestrian, "pedestrian"),
    ];
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (mobility, label) in variants {
        let (coverage, errs, rate) = run_variant(p, mobility);
        let mean = if errs.is_empty() {
            f64::NAN
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        notes.push(format!(
            "{label:<10} (1 radio): coverage {:.0}%, mean RDE {mean:.1} m, answer rate {rate:.2}",
            coverage * 100.0
        ));
        series.push(Series::cdf(format!("{label}, 1 radio"), errs));
    }
    notes.push(
        "slow movers sweep the band within a metre of travel, so one radio \
         suffices — RUPS ports to pedestrians with *less* hardware than cars"
            .into(),
    );
    Figure {
        id: "ext-pedestrian".into(),
        title: "RUPS at walking and cycling speeds, single radio (§VII)".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_movers_get_better_coverage() {
        let p = quick_params();
        let (cov_car, _, _) = run_variant(&p, Mobility::Vehicle);
        let (cov_ped, errs_ped, rate_ped) = run_variant(&p, Mobility::Pedestrian);
        assert!(
            cov_ped > cov_car * 2.0,
            "pedestrian coverage {cov_ped:.2} vs car {cov_car:.2}"
        );
        assert!(rate_ped > 0.5, "pedestrian answer rate {rate_ped}");
        if !errs_ped.is_empty() {
            let mean = errs_ped.iter().sum::<f64>() / errs_ped.len() as f64;
            assert!(mean < 10.0, "pedestrian mean RDE {mean:.1}");
        }
    }
}

//! Extension experiment: the unified telemetry layer under fault injection.
//!
//! Re-runs the two-vehicle faulted exchange of [`ext_faults`] with every
//! stage wired onto **one shared metrics registry** — the rear node's SYN
//! engine and quality grading, the [`V2vLink`] fault model, the codec
//! validator and the [`SnapshotInbox`] — plus one shared span ring
//! recording the hot-path trace events. While the scenario replays, the
//! harness samples the registry every `epoch_stride` query epochs and
//! emits the per-window [`MetricsSnapshot::delta`]s as a machine-readable
//! timeline (`results/ext-observability-metrics.json` by default).
//!
//! The timeline is the observability acceptance artefact: it carries the
//! engine context/window cache hit and miss counters, the SYN-stage
//! latency histograms (p50/p95/p99 of `rups_core_engine_query_ns` and
//! friends), the link fault counters (`rups_v2v_link_dropped`, …) and the
//! per-grade fix-quality counters, per window and cumulatively. Window
//! deltas are slimmed ([`MetricsSnapshot::compact`]) and capped at
//! [`Params::max_windows`] so the committed artefact stays reviewable;
//! the cumulative snapshot stays complete.
//!
//! Two forensic artefacts ride along: the span ring is exported as a
//! Chrome trace-event JSON (`results/ext-observability-trace.json`,
//! loadable in `chrome://tracing`/Perfetto), and a
//! [`FlightRecorder`] wired into the rear node
//! watches the run. Two thirds in, a burst of structurally valid but
//! unrelated "rogue" snapshots is injected into the inbox; the resulting
//! fix-error spike trips the recorder and its black box — registry
//! deltas, recent spans, per-fix [`FixReport`](rups_core::report::FixReport)s
//! — lands in `results/ext-observability-flight.json`.
//!
//! [`ext_faults`]: crate::figures::ext_faults
//! [`V2vLink`]: v2v_sim::link::V2vLink
//! [`SnapshotInbox`]: rups_core::inbox::SnapshotInbox
//! [`MetricsSnapshot::delta`]: rups_obs::MetricsSnapshot::delta

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_core::config::RupsConfig;
use rups_core::geo::GeoSample;
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::{ContextSnapshot, RupsNode};
use rups_core::quality::QualityConfig;
use rups_core::report::default_flight_config;
use rups_core::testfield;
use rups_obs::{
    chrome_trace_tail, write_chrome_trace, FlightRecorder, MetricsSnapshot, Registry, SpanRecorder,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use v2v_sim::codec::{try_encode_snapshot, CodecMetrics};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

/// Parameters of the telemetry-under-faults run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (duration, band width, master seed).
    pub scale: EvalScale,
    /// True front–rear gap, metres.
    pub gap_m: f64,
    /// Journey context the front vehicle beacons, metres.
    pub context_m: usize,
    /// Metres driven before the first beacon (context build-up).
    pub warmup_m: usize,
    /// Staleness horizon of the receiver's inbox, seconds.
    pub horizon_s: f64,
    /// Channel impairments (default: the ext-faults acceptance cell,
    /// ~30 % expected burst loss plus 1 % corruption).
    pub faults: FaultConfig,
    /// Query epochs aggregated into one timeline window. The effective
    /// stride grows as needed to keep the timeline under `max_windows`.
    pub epoch_stride: usize,
    /// Hard cap on timeline windows in the artefact (the committed file
    /// must stay diff-reviewable; see EXPERIMENTS.md).
    pub max_windows: usize,
    /// Capacity of the shared span ring.
    pub span_capacity: usize,
    /// Newest span records exported into the Chrome trace.
    pub trace_max_events: usize,
    /// Rogue (structurally valid, unrelated-field) snapshots injected two
    /// thirds into the run to demonstrate the flight recorder; 0 disables
    /// the injection.
    pub rogue_burst: usize,
    /// Where to write the metrics timeline JSON; `None` skips the write.
    pub out_path: Option<String>,
    /// Where to write the Chrome trace-event JSON; `None` skips it.
    pub trace_out_path: Option<String>,
    /// Where to write the flight-recorder dump (written only when a
    /// trigger fired); `None` skips it.
    pub flight_out_path: Option<String>,
}

/// The default on-disk home of the timeline, resolved against the
/// workspace so the artefact lands in `results/` regardless of the
/// invocation directory.
pub fn default_out_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-observability-metrics.json"
    )
    .to_string()
}

/// Default home of the Chrome trace-event export.
pub fn default_trace_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-observability-trace.json"
    )
    .to_string()
}

/// Default home of the flight-recorder dump.
pub fn default_flight_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-observability-flight.json"
    )
    .to_string()
}

/// The fault cell the timeline is recorded under: ~30 % expected burst
/// loss with duplication, reordering, corruption and jitter on top.
pub fn default_faults() -> FaultConfig {
    FaultConfig {
        duplicate: 0.05,
        reorder: 0.05,
        corrupt: 0.01,
        jitter_s: 0.02,
        ..FaultConfig::bursty(0.15, 0.35, 1.0)
    }
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            gap_m: 60.0,
            context_m: 250,
            warmup_m: 260,
            horizon_s: 10.0,
            faults: default_faults(),
            epoch_stride: 60,
            max_windows: 24,
            span_capacity: 4096,
            trace_max_events: 2048,
            rogue_burst: 4,
            out_path: Some(default_out_path()),
            trace_out_path: Some(default_trace_path()),
            flight_out_path: Some(default_flight_path()),
        }
    }
}

/// Smaller run for tests and `--quick` smoke passes.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        epoch_stride: 30,
        ..Params::default()
    }
}

/// One aggregation window of the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Query epoch index at the end of this window (1-based, inclusive).
    pub epoch_end: usize,
    /// Simulated time at the end of this window, seconds.
    pub t_s: f64,
    /// Metrics recorded during this window only (counters and histograms
    /// are deltas; gauges are last-value), slimmed via
    /// [`MetricsSnapshot::compact`]: zero counters and empty histograms
    /// are dropped and bucket arrays cleared — quantiles and counts
    /// remain. The cumulative snapshot keeps everything.
    pub delta: MetricsSnapshot,
}

/// The machine-readable artefact of the run: per-window metric deltas
/// plus the cumulative snapshot they sum to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsTimeline {
    /// Always `"ext-observability"`.
    pub figure_id: String,
    /// Query epochs per timeline window.
    pub epoch_stride: usize,
    /// The channel impairments the run was recorded under.
    pub faults: FaultConfig,
    /// The per-window deltas, oldest first.
    pub entries: Vec<TimelineEntry>,
    /// The registry at the end of the run; window deltas of any counter
    /// sum to its cumulative value here.
    pub cumulative: MetricsSnapshot,
    /// Spans recorded into the shared ring over the whole run (may exceed
    /// the ring capacity; the ring keeps the newest).
    pub spans_recorded: u64,
}

/// The counter-derived hit/delivery ratio `num / (num + miss)`; 0 when
/// the window saw no events.
fn ratio(snap: &MetricsSnapshot, num: &str, miss: &str) -> f64 {
    let n = snap.counter(num).unwrap_or(0);
    let m = snap.counter(miss).unwrap_or(0);
    if n + m == 0 {
        0.0
    } else {
        n as f64 / (n + m) as f64
    }
}

/// Runs the experiment, writing the timeline to `p.out_path` when set.
pub fn run(p: &Params) -> Figure {
    let s = &p.scale;
    let mut cfg = s.rups_config();
    cfg.max_context_m = p.context_m + 150;
    let field_seed = s.seed ^ 0xFA17;
    let field = |metre: f64, ch: usize| testfield::rssi(field_seed, metre, ch);

    // The unified wiring: one registry, one span ring, every stage, plus
    // the flight recorder watching the rear node's fix pipeline.
    let registry = Arc::new(Registry::new());
    let spans = Arc::new(SpanRecorder::new(p.span_capacity));
    let flight = Arc::new(
        FlightRecorder::new(default_flight_config(), Arc::clone(&registry))
            .with_spans(Arc::clone(&spans)),
    );
    let mut rear = RupsNode::new(cfg.clone())
        .with_vehicle_id(1)
        .with_observability(Arc::clone(&registry))
        .with_span_recorder(Arc::clone(&spans))
        .with_flight_recorder(Arc::clone(&flight));
    let mut front = RupsNode::new(cfg.clone()).with_vehicle_id(2);
    let link = V2vLink::with_faults_in(p.faults, s.seed ^ 0x0B5E, Arc::clone(&registry))
        .with_spans(Arc::clone(&spans));
    let ep_rear = link.join(1);
    let ep_front = link.join(2);
    let mut inbox = SnapshotInbox::new(InboxConfig::for_rups(&cfg, p.horizon_s))
        .with_registry(&registry)
        .with_spans(Arc::clone(&spans));
    let codec = CodecMetrics::register(&registry);
    let quality_cfg = QualityConfig::default();

    // One query epoch per metre after warmup; the stride grows as needed
    // so the committed timeline never exceeds `max_windows` entries.
    let duration_epochs = s.duration_s as usize;
    let stride = p
        .epoch_stride
        .max(1)
        .max(duration_epochs.div_ceil(p.max_windows.max(1)));
    let inject_epoch = duration_epochs * 2 / 3;
    let mut entries = Vec::new();
    let mut prev = registry.snapshot();
    let mut epochs = 0usize;

    let total_m = p.warmup_m + duration_epochs;
    for metre in 0..total_m {
        let t = metre as f64;
        for (node, offset) in [(&mut rear, 0.0), (&mut front, p.gap_m)] {
            let road_m = t + offset;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| Some(field(road_m, ch))),
            )
            .expect("synthetic drive never mismatches");
        }
        if metre < p.warmup_m {
            continue;
        }

        let snap = front.snapshot(Some(p.context_m));
        if let Ok(wire) = try_encode_snapshot(&snap) {
            ep_front.broadcast(t, wire);
        }
        for delivery in ep_rear.poll_until(t) {
            if let Ok(snap) = codec.decode(&delivery.payload) {
                let _ = inbox.accept(snap, t);
            }
        }
        epochs += 1;
        if p.rogue_burst > 0 && epochs == inject_epoch {
            for i in 0..p.rogue_burst as u64 {
                let rogue = rogue_snapshot(&cfg, p.context_m, field_seed ^ (0x60D + i), 100 + i, t);
                let _ = inbox.accept(rogue, t);
            }
        }
        for _ in rear.fix_inbox_parallel(&inbox, t, &quality_cfg) {}

        if epochs.is_multiple_of(stride) {
            let now = registry.snapshot();
            entries.push(TimelineEntry {
                epoch_end: epochs,
                t_s: t,
                delta: now.delta(&prev).compact(),
            });
            prev = now;
        }
    }

    let cumulative = registry.snapshot();
    if !epochs.is_multiple_of(stride) {
        entries.push(TimelineEntry {
            epoch_end: epochs,
            t_s: (total_m - 1) as f64,
            delta: cumulative.delta(&prev).compact(),
        });
    }

    let timeline = MetricsTimeline {
        figure_id: "ext-observability".into(),
        epoch_stride: stride,
        faults: p.faults,
        entries,
        cumulative,
        spans_recorded: spans.recorded_total(),
    };
    let mut notes = Vec::new();
    if let Some(path) = &p.out_path {
        write_timeline(path, &timeline);
        notes.push(format!("metrics timeline written to {path}"));
    }
    if let Some(path) = &p.trace_out_path {
        let trace = chrome_trace_tail(&spans, p.trace_max_events);
        write_chrome_trace(path, &trace);
        notes.push(format!(
            "chrome trace ({} events) written to {path}",
            trace.traceEvents.len()
        ));
    }
    if p.rogue_burst > 0 {
        notes.push(format!(
            "{} rogue snapshots injected at epoch {inject_epoch} to trip the flight recorder",
            p.rogue_burst
        ));
    }
    if let Some(path) = &p.flight_out_path {
        if flight.has_triggered() {
            flight.dump_to(path);
            notes.push(format!(
                "flight recorder triggered; black box written to {path}"
            ));
        } else {
            notes.push("flight recorder armed but never triggered; no black box written".into());
        }
    }

    // The figure view of the timeline: cache/delivery health per window.
    let x: Vec<f64> = timeline.entries.iter().map(|e| e.t_s).collect();
    let series_of = |label: &str, f: &dyn Fn(&MetricsSnapshot) -> f64| {
        Series::new(
            label,
            x.clone(),
            timeline.entries.iter().map(|e| f(&e.delta)).collect(),
        )
    };
    let series = vec![
        series_of("engine context hit rate per window", &|d| {
            ratio(
                d,
                "rups_core_engine_context_hits",
                "rups_core_engine_context_rebuilds",
            )
        }),
        series_of("engine window-memo hit rate per window", &|d| {
            ratio(
                d,
                "rups_core_engine_window_hits",
                "rups_core_engine_window_misses",
            )
        }),
        series_of("link delivery rate per window", &|d| {
            let offered = d.counter("rups_v2v_link_offered").unwrap_or(0);
            let delivered = d.counter("rups_v2v_link_delivered").unwrap_or(0);
            if offered == 0 {
                0.0
            } else {
                delivered as f64 / offered as f64
            }
        }),
        series_of("engine query p95 per window (µs)", &|d| {
            d.histogram("rups_core_engine_query_ns")
                .map_or(0.0, |h| h.p95 / 1_000.0)
        }),
    ];

    let cum = &timeline.cumulative;
    notes.push(format!(
        "engine: {} queries, context hit rate {:.2}, window hit rate {:.2}",
        cum.counter("rups_core_engine_queries").unwrap_or(0),
        ratio(
            cum,
            "rups_core_engine_context_hits",
            "rups_core_engine_context_rebuilds"
        ),
        ratio(
            cum,
            "rups_core_engine_window_hits",
            "rups_core_engine_window_misses"
        ),
    ));
    if let Some(h) = cum.histogram("rups_core_engine_query_ns") {
        notes.push(format!(
            "query latency: p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs over {} queries",
            h.p50 / 1_000.0,
            h.p95 / 1_000.0,
            h.p99 / 1_000.0,
            h.count,
        ));
    }
    notes.push(format!(
        "link: {} offered, {} delivered, {} dropped, {} duplicated, {} corrupted",
        cum.counter("rups_v2v_link_offered").unwrap_or(0),
        cum.counter("rups_v2v_link_delivered").unwrap_or(0),
        cum.counter("rups_v2v_link_dropped").unwrap_or(0),
        cum.counter("rups_v2v_link_duplicated").unwrap_or(0),
        cum.counter("rups_v2v_link_corrupted").unwrap_or(0),
    ));
    notes.push(format!(
        "intake: {} codec ok, {} inbox accepted; quality H/M/L {}/{}/{}, {} rejected",
        cum.counter("rups_v2v_codec_decode_ok").unwrap_or(0),
        cum.counter("rups_core_inbox_accepted").unwrap_or(0),
        cum.counter("rups_core_quality_grade_high").unwrap_or(0),
        cum.counter("rups_core_quality_grade_medium").unwrap_or(0),
        cum.counter("rups_core_quality_grade_low").unwrap_or(0),
        cum.counter("rups_core_quality_rejected").unwrap_or(0),
    ));
    notes.push(format!(
        "{} spans recorded into a {}-slot ring ({} timeline windows of {} epochs)",
        timeline.spans_recorded,
        p.span_capacity,
        timeline.entries.len(),
        stride,
    ));

    Figure {
        id: "ext-observability".into(),
        title: "Unified telemetry under V2V channel faults".into(),
        notes,
        series,
    }
}

/// A structurally valid snapshot whose GSM field comes from an unrelated
/// seed: the SYN search against it can only miss, so a burst of these in
/// the inbox drives the fix-error rate up and trips the flight recorder's
/// `fix_error_spike` rule.
fn rogue_snapshot(
    cfg: &RupsConfig,
    context_m: usize,
    seed: u64,
    vehicle_id: u64,
    t: f64,
) -> ContextSnapshot {
    let mut rogue = RupsNode::new(cfg.clone()).with_vehicle_id(vehicle_id);
    for j in 0..context_m {
        rogue
            .append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t - (context_m - 1 - j) as f64,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| {
                    Some(testfield::rssi(seed, j as f64, ch))
                }),
            )
            .expect("rogue synthetic drive never mismatches");
    }
    rogue.snapshot(Some(context_m))
}

/// Serialises the timeline to `path`, creating parent directories.
fn write_timeline(path: &str, timeline: &MetricsTimeline) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create metrics output dir");
    }
    let json = serde_json::to_string_pretty(timeline).expect("serialize metrics timeline");
    std::fs::write(p, json).expect("write metrics timeline");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_lands_on_disk_with_live_counters() {
        let mut p = quick_params();
        let dir = std::env::temp_dir();
        let path = dir.join("rups-ext-observability-test-metrics.json");
        let trace_path = dir.join("rups-ext-observability-test-trace.json");
        let flight_path = dir.join("rups-ext-observability-test-flight.json");
        p.out_path = Some(path.to_string_lossy().into_owned());
        p.trace_out_path = Some(trace_path.to_string_lossy().into_owned());
        p.flight_out_path = Some(flight_path.to_string_lossy().into_owned());
        let fig = run(&p);

        // The artefact parses back into the typed timeline.
        let raw = std::fs::read_to_string(&path).expect("timeline written");
        std::fs::remove_file(&path).ok();
        let tl: MetricsTimeline = serde_json::from_str(&raw).expect("timeline parses");
        assert_eq!(tl.figure_id, "ext-observability");
        assert!(!tl.entries.is_empty());

        // Key counters are live: the engine queried, the link faulted.
        let cum = &tl.cumulative;
        let queries = cum.counter("rups_core_engine_queries").unwrap();
        assert!(queries > 0);
        assert!(cum.counter("rups_v2v_link_offered").unwrap() > 0);
        assert!(
            cum.counter("rups_v2v_link_dropped").unwrap() > 0,
            "a 30% burst-loss channel must drop frames"
        );
        assert!(cum.counter("rups_core_inbox_accepted").unwrap() > 0);
        let grades = cum.counter("rups_core_quality_grade_high").unwrap()
            + cum.counter("rups_core_quality_grade_medium").unwrap()
            + cum.counter("rups_core_quality_grade_low").unwrap();
        assert!(grades > 0, "faulted run still grades fixes");

        // SYN-stage latency histograms carry quantiles (obs is on by
        // default throughout the eval stack).
        let h = cum.histogram("rups_core_engine_query_ns").unwrap();
        assert!(h.count > 0);
        assert!(h.p99 >= h.p50);
        assert!(tl.spans_recorded > 0);

        // Window deltas of a counter sum exactly to its cumulative value.
        let windowed: u64 = tl
            .entries
            .iter()
            .map(|e| e.delta.counter("rups_core_engine_queries").unwrap_or(0))
            .sum();
        assert_eq!(windowed, queries);

        // The stride cap bounded the committed artefact.
        assert!(tl.entries.len() <= p.max_windows);

        // The Chrome trace parses back and carries both complete spans and
        // the per-component thread-name metadata.
        let raw = std::fs::read_to_string(&trace_path).expect("trace written");
        std::fs::remove_file(&trace_path).ok();
        let trace: rups_obs::ChromeTrace = serde_json::from_str(&raw).expect("trace parses");
        assert!(!trace.traceEvents.is_empty());
        assert!(trace.traceEvents.iter().any(|e| e.ph == "X"));
        assert!(trace
            .traceEvents
            .iter()
            .any(|e| e.ph == "M" && e.name == "thread_name"));
        assert!(trace.traceEvents.len() <= p.trace_max_events + 16);

        // The rogue burst tripped the flight recorder: the black box holds
        // registry deltas, recent spans and per-fix reports.
        let raw = std::fs::read_to_string(&flight_path).expect("flight dump written");
        std::fs::remove_file(&flight_path).ok();
        let dump: rups_obs::FlightDump = serde_json::from_str(&raw).expect("flight dump parses");
        assert!(dump.triggered.iter().any(|t| t.rule == "fix_error_spike"));
        assert!(!dump.windows.is_empty());
        assert!(!dump.spans.is_empty());
        assert!(!dump.fixes.is_empty());

        // The figure view mirrors the timeline shape.
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.series[0].x.len(), tl.entries.len());
    }
}

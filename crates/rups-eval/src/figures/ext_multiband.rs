//! Extension experiment: multi-band fingerprint fusion (§VII future work).
//!
//! "We will further improve the accuracy of RUPS by involving other ambient
//! wireless signals such as the 3G/4G, FM and TV bands." We implement the
//! FM half: each vehicle adds one FM tuner and the FM carriers are fused as
//! extra rows of the GSM-aware trajectory. FM matters most **under elevated
//! roads**, where the deck mutes 900 MHz carriers but 100 MHz broadcast
//! signals slip through — the setting where plain RUPS is weakest (6.9 m in
//! the paper).

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times, summarize_rde};
use crate::series::{Figure, Series};
use crate::tracegen::{generate, TraceConfig};
use rups_core::config::RupsConfig;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the multiband experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
    /// Road setting (default: the hardest, under elevated roads).
    pub road: RoadClass,
    /// FM channels fused in the multi-band variant.
    pub fm_channels: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            road: RoadClass::UnderElevated,
            fm_channels: 24,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        ..Default::default()
    }
}

/// Runs one variant and returns (per-query errors, answer rate).
fn run_variant(p: &Params, fm_channels: usize) -> (Vec<f64>, f64) {
    let s = &p.scale;
    let cfg = RupsConfig {
        n_channels: s.n_channels + fm_channels,
        ..s.rups_config()
    };
    let mut all = Vec::new();
    for seed in s.trace_seeds(0xFB) {
        let trace = generate(&TraceConfig {
            n_channels: s.n_channels,
            scanned_channels: s.scanned_channels,
            route_len_m: s.route_len_m(),
            duration_s: s.duration_s,
            fm_channels,
            ..TraceConfig::new(seed, p.road)
        });
        let times = sample_query_times(&trace, s.queries_per_seed(), s.seed ^ 0xFB1);
        all.extend(run_queries(&trace, &cfg, &times));
    }
    let (_, rate) = summarize_rde(&all);
    (all.into_iter().filter_map(|o| o.rde_m).collect(), rate)
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let (gsm_errs, gsm_rate) = run_variant(p, 0);
    let (multi_errs, multi_rate) = run_variant(p, p.fm_channels);

    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let m_gsm = mean(&gsm_errs);
    let m_multi = mean(&multi_errs);
    Figure {
        id: "ext-multiband".into(),
        title: format!("FM-band fusion on {} (§VII future work)", p.road),
        notes: vec![
            format!("GSM only:      mean RDE {m_gsm:.1} m, answer rate {gsm_rate:.2}"),
            format!(
                "GSM + {} FM ch: mean RDE {m_multi:.1} m, answer rate {multi_rate:.2}",
                p.fm_channels
            ),
            "FM carriers penetrate under elevated decks and are temporally \
             rock-stable, shoring RUPS up exactly where GSM is weakest"
                .into(),
        ],
        series: vec![
            Series::cdf("GSM only", gsm_errs),
            Series::cdf(format!("GSM + {} FM channels", p.fm_channels), multi_errs),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_fusion_does_not_hurt_under_elevated_roads() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 2);
        let gsm = &fig.series[0];
        let multi = &fig.series[1];
        assert!(!multi.x.is_empty(), "multiband variant produced no fixes");
        // Fusion must not make the answer rate worse, and the median error
        // should be no worse than GSM-only plus noise margin.
        if !gsm.x.is_empty() {
            let med_gsm = gsm.percentile(50.0);
            let med_multi = multi.percentile(50.0);
            assert!(
                med_multi <= med_gsm + 2.0,
                "fusion degraded accuracy: {med_multi:.1} vs {med_gsm:.1}"
            );
        }
    }
}

//! Fig. 10: relative-distance error with one vs multiple SYN points under
//! passing-vehicle disturbances (§VI-C).
//!
//! On an 8-lane urban road (heavy passing traffic ⇒ frequent occlusion
//! events), the original single-SYN RUPS leaves a heavy error tail —
//! "about one quarter of errors are larger than ten meters … most large
//! errors occur when there is a big vehicle passing by". Aggregating five
//! SYN points fixes it, the *selective average* (drop min and max) most of
//! all. We run the queries once and re-aggregate the same per-SYN estimates
//! under each scheme, exactly comparable.

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times, QueryOutcome};
use crate::series::{Figure, Series};
use crate::tracegen::{generate, TraceConfig};
use rups_core::config::AggregationScheme;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the Fig. 10 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
    /// Occlusion events per minute (8-lane default is heavy).
    pub occlusion_rate_per_min: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            occlusion_rate_per_min: 2.5,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        ..Default::default()
    }
}

/// Re-aggregates an outcome's per-SYN estimates under `scheme` and returns
/// the resulting |error|.
fn rde_under(outcome: &QueryOutcome, scheme: AggregationScheme) -> Option<f64> {
    let fix = outcome.fix.as_ref()?;
    let est = scheme.aggregate(&fix.estimates_m)?;
    Some((est - outcome.truth_m).abs())
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let s = &p.scale;
    let rups_cfg = s.rups_config();
    let mut outcomes = Vec::new();
    let mut n_occlusions = 0usize;
    for seed in s.trace_seeds(0xF10) {
        let trace = generate(&TraceConfig {
            n_channels: s.n_channels,
            scanned_channels: s.scanned_channels,
            route_len_m: s.route_len_m(),
            duration_s: s.duration_s,
            occlusion_rate_per_min: p.occlusion_rate_per_min,
            ..TraceConfig::new(seed, RoadClass::Urban8Lane)
        });
        let times = sample_query_times(&trace, s.queries_per_seed(), s.seed ^ 0xA10);
        outcomes.extend(run_queries(&trace, &rups_cfg, &times));
        n_occlusions += trace.occlusions.len();
    }

    let schemes = [
        (AggregationScheme::Single, "one SYN point (original RUPS)"),
        (
            AggregationScheme::SimpleAverage,
            "5 SYN points, simple average",
        ),
        (
            AggregationScheme::SelectiveAverage,
            "5 SYN points, selective average",
        ),
    ];
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (scheme, label) in schemes {
        let errs: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| rde_under(o, scheme))
            .collect();
        let cdf = Series::cdf(label, errs);
        if !cdf.x.is_empty() {
            notes.push(format!(
                "{label}: {:.0}% of errors above 10 m, median {:.1} m",
                100.0 * (1.0 - cdf.cdf_at(10.0)),
                cdf.percentile(50.0)
            ));
        }
        series.push(cdf);
    }
    notes.push(format!(
        "{n_occlusions} occlusion events across the drives (paper: big passing vehicles \
         cause the tail)"
    ));
    Figure {
        id: "fig10".into(),
        title: "CDFs of RDE derived with one and multiple SYN points".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_improves_the_tail() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 3);
        let single = &fig.series[0];
        let selective = &fig.series[2];
        assert!(!single.x.is_empty());
        // Selective average should not be worse than single-SYN at the
        // 10 m mark (it is strictly better at paper scale).
        assert!(
            selective.cdf_at(10.0) >= single.cdf_at(10.0) - 0.1,
            "selective {} vs single {}",
            selective.cdf_at(10.0),
            single.cdf_at(10.0)
        );
    }

    #[test]
    fn occlusions_present_in_trace() {
        let fig = run(&quick_params());
        let note = fig.notes.last().unwrap();
        let n: usize = note.split_whitespace().next().unwrap().parse().unwrap();
        assert!(n > 0, "expected occlusion events, note: {note}");
    }
}

//! §V-B: responding time and system scalability — the communication cost of
//! exchanging journey contexts over 802.11p.
//!
//! Reproduces the paper's arithmetic (1 km context → ~182 KB → ~130 WSM
//! packets → ~0.52 s) with the actual snapshot codec, and quantifies the
//! §V-B tracking optimisation: after the first full exchange, incremental
//! tail updates at a 10 Hz tracking rate cost a tiny fraction of repeated
//! full transfers.

use crate::series::{Figure, Series};
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::{GsmTrajectory, PowerVector};
use rups_core::pipeline::ContextSnapshot;
use rups_core::testfield;
use serde::{Deserialize, Serialize};
use v2v_sim::tracking::TrackingSession;
use v2v_sim::wsm::{exchange_time_s, WsmConfig};

/// Parameters of the §V-B communication measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Band width carried on the wire.
    pub n_channels: usize,
    /// Context lengths to evaluate, metres.
    pub max_context_m: usize,
    /// Vehicle speed for the tracking scenario, m/s.
    pub speed_mps: f64,
    /// Tracking window length, seconds.
    pub tracking_secs: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            n_channels: 194,
            max_context_m: 1000,
            speed_mps: 10.0,
            tracking_secs: 60,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        n_channels: 48,
        max_context_m: 200,
        tracking_secs: 20,
        ..Default::default()
    }
}

fn snapshot_of_len(len: usize, n_channels: usize) -> ContextSnapshot {
    let mut geo = GeoTrajectory::with_capacity(len);
    let mut gsm = GsmTrajectory::with_capacity(n_channels, len);
    for i in 0..len {
        geo.push(GeoSample {
            heading_rad: 0.0,
            timestamp_s: i as f64,
        });
        gsm.push(&PowerVector::from_fn(n_channels, |ch| {
            Some(testfield::rssi(9, i as f64, ch))
        }));
    }
    ContextSnapshot {
        vehicle_id: Some(1),
        geo,
        gsm,
        trace: None,
    }
}

/// Runs the measurement.
pub fn run(p: &Params) -> Figure {
    let wsm = WsmConfig::default();

    // Full-context exchange cost vs context length.
    let lens: Vec<usize> = [125, 250, 500, 1000]
        .iter()
        .map(|&l: &usize| l.min(p.max_context_m))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut bytes_y = Vec::new();
    let mut time_y = Vec::new();
    for &len in &lens {
        let wire = v2v_sim::codec::encode_snapshot(&snapshot_of_len(len, p.n_channels));
        bytes_y.push(wire.len() as f64);
        time_y.push(exchange_time_s(wire.len(), &wsm));
    }

    // Tracking: one full context then 10 Hz incremental updates while the
    // vehicle adds `speed_mps` metres of trajectory per second.
    let mut session = TrackingSession::new(250);
    let full_len = p.max_context_m;
    let mut total_incremental_bytes = 0usize;
    let mut n_updates = 0usize;
    let mut first_full_bytes = 0usize;
    for sec in 0..=p.tracking_secs {
        let len = full_len + (sec as f64 * p.speed_mps) as usize;
        let snap = snapshot_of_len(len, p.n_channels);
        if let Some(update) = session.next_update(&snap) {
            if sec == 0 {
                first_full_bytes = update.wire_bytes();
            } else {
                total_incremental_bytes += update.wire_bytes();
                n_updates += 1;
            }
        }
    }
    let naive_bytes = first_full_bytes * (p.tracking_secs + 1);

    let x: Vec<f64> = lens.iter().map(|&l| l as f64).collect();
    let full_1km = *bytes_y.last().unwrap();
    let t_1km = *time_y.last().unwrap();
    let packets = wsm.packets_for(full_1km as usize);
    Figure {
        id: "sec5b".into(),
        title: "Context exchange cost over 802.11p (WSM)".into(),
        notes: vec![
            format!(
                "{} m context: {:.0} KB → {packets} WSM packets → {t_1km:.2} s \
                 (paper: 1 km ≈ 182 KB ≈ 130 packets ≈ 0.52 s)",
                lens.last().unwrap(),
                full_1km / 1024.0
            ),
            format!(
                "tracking for {} s: 1 full transfer ({:.0} KB) + {n_updates} incremental \
                 updates totalling {:.1} KB — {:.1}× less traffic than re-sending full \
                 contexts ({:.0} KB)",
                p.tracking_secs,
                first_full_bytes as f64 / 1024.0,
                total_incremental_bytes as f64 / 1024.0,
                naive_bytes as f64 / (first_full_bytes + total_incremental_bytes).max(1) as f64,
                naive_bytes as f64 / 1024.0
            ),
        ],
        series: vec![
            Series::new("wire bytes vs context metres", x.clone(), bytes_y),
            Series::new("exchange seconds vs context metres", x, time_y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_numbers() {
        let fig = run(&Params::default());
        let bytes = &fig.series[0];
        let time = &fig.series[1];
        // 1 km × 194 channels ≈ 200 KB, ≈0.57 s.
        let last_bytes = *bytes.y.last().unwrap();
        assert!(
            (150_000.0..250_000.0).contains(&last_bytes),
            "bytes {last_bytes}"
        );
        let last_time = *time.y.last().unwrap();
        assert!((0.4..0.8).contains(&last_time), "time {last_time}");
    }

    #[test]
    fn tracking_beats_naive_retransmission() {
        let fig = run(&quick_params());
        // The ratio note must report a >5× saving.
        let note = &fig.notes[1];
        let ratio: f64 = note
            .split("— ")
            .nth(1)
            .and_then(|s| s.split('×').next())
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(ratio > 5.0, "tracking saving only {ratio}× ({note})");
    }

    #[test]
    fn exchange_time_grows_with_context() {
        let fig = run(&quick_params());
        let time = &fig.series[1];
        assert!(time.y.windows(2).all(|w| w[1] >= w[0]));
    }
}

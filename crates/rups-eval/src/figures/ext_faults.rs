//! Extension experiment: end-to-end robustness of the exchange path under
//! channel faults (hardening of §V-B).
//!
//! Two vehicles drive the same road at a fixed gap. The front vehicle
//! beacons its journey context once per second through a [`V2vLink`] whose
//! Gilbert–Elliott fault model injects burst loss, duplication,
//! reordering, payload damage and jitter. The rear vehicle runs the full
//! hardened receive path — time-aware [`poll_until`] delivery, codec
//! validation, [`SnapshotInbox`] vetting, graded fixes via
//! [`fix_inbox_parallel`] — and we measure, per fault severity:
//!
//! * **fix availability** — the fraction of query epochs with a usable
//!   (fresh, vetted) fix, and
//! * **fix error** — mean |estimate − truth| of the fixes produced.
//!
//! The hardening claim under test: even at ≥30 % expected burst loss plus
//! payload corruption, the node keeps producing fixes whenever valid
//! snapshots arrive — damaged input surfaces as typed rejections and
//! quality downgrades, never as panics or silent garbage.
//!
//! [`V2vLink`]: v2v_sim::link::V2vLink
//! [`poll_until`]: v2v_sim::link::Endpoint::poll_until
//! [`SnapshotInbox`]: rups_core::inbox::SnapshotInbox
//! [`fix_inbox_parallel`]: rups_core::pipeline::RupsNode::fix_inbox_parallel

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_core::geo::GeoSample;
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::RupsNode;
use rups_core::quality::QualityConfig;
use rups_core::testfield;
use serde::{Deserialize, Serialize};
use v2v_sim::codec::{decode_snapshot, try_encode_snapshot};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

/// One fault-severity cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Legend label.
    pub label: String,
    /// The channel impairments of this cell.
    pub faults: FaultConfig,
}

/// Parameters of the fault-robustness experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (duration, band width, master seed).
    pub scale: EvalScale,
    /// True front–rear gap, metres (both vehicles hold it exactly).
    pub gap_m: f64,
    /// Journey context the front vehicle beacons, metres.
    pub context_m: usize,
    /// Metres driven before the first beacon (context build-up).
    pub warmup_m: usize,
    /// Staleness horizon of the receiver's inbox, seconds.
    pub horizon_s: f64,
    /// The fault severities to sweep.
    pub cells: Vec<Cell>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            gap_m: 60.0,
            // The SYN search needs the *shared* road segment (context − gap)
            // to fit the 85 m correlation window, with margin.
            context_m: 250,
            warmup_m: 260,
            horizon_s: 10.0,
            cells: default_cells(),
        }
    }
}

/// The default severity ladder, from the paper's ideal channel to a deep
/// urban fade with every impairment on.
pub fn default_cells() -> Vec<Cell> {
    vec![
        Cell {
            label: "ideal channel".into(),
            faults: FaultConfig::ideal(),
        },
        Cell {
            label: "i.i.d. 10% loss".into(),
            faults: FaultConfig::iid_loss(0.10),
        },
        Cell {
            // Stationary bad fraction 0.15/(0.15+0.35) = 0.30 with total
            // loss in bursts: 30 % expected loss, plus 1 % corruption —
            // the ISSUE acceptance cell.
            label: "burst 30% loss + 1% corruption".into(),
            faults: FaultConfig {
                duplicate: 0.05,
                reorder: 0.05,
                corrupt: 0.01,
                jitter_s: 0.02,
                ..FaultConfig::bursty(0.15, 0.35, 1.0)
            },
        },
        Cell {
            label: "burst 50% loss + heavy damage".into(),
            faults: FaultConfig {
                duplicate: 0.10,
                reorder: 0.10,
                truncate: 0.02,
                corrupt: 0.02,
                jitter_s: 0.05,
                ..FaultConfig::bursty(0.25, 0.25, 1.0)
            },
        },
    ]
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        gap_m: 60.0,
        context_m: 250,
        warmup_m: 260,
        horizon_s: 10.0,
        cells: default_cells(),
    }
}

/// Outcome of one severity cell.
struct CellOutcome {
    epochs: usize,
    fixes: usize,
    mean_abs_err_m: f64,
    worst_abs_err_m: f64,
    codec_rejects: u64,
    inbox_rejects: u64,
    /// Low/medium/high fix grades, read off the node's metrics registry
    /// (`rups_core_quality_grade_*`) rather than re-counted by hand.
    quality: [u64; 3],
    graded_rejects: u64,
}

/// Replays the two-vehicle scenario through one faulty link.
fn run_cell(p: &Params, faults: &FaultConfig, link_seed: u64) -> CellOutcome {
    let s = &p.scale;
    let mut cfg = s.rups_config();
    // The rear vehicle only needs enough own context to cover the beaconed
    // snapshot; capping it keeps the per-epoch SYN search cheap.
    cfg.max_context_m = p.context_m + 150;
    let field_seed = s.seed ^ 0xFA17;
    let field = |metre: f64, ch: usize| testfield::rssi(field_seed, metre, ch);

    let mut rear = RupsNode::new(cfg.clone()).with_vehicle_id(1);
    let mut front = RupsNode::new(cfg.clone()).with_vehicle_id(2);
    let link = V2vLink::with_faults(*faults, link_seed);
    let ep_rear = link.join(1);
    let ep_front = link.join(2);
    let mut inbox = SnapshotInbox::new(InboxConfig::for_rups(&cfg, p.horizon_s));
    let quality_cfg = QualityConfig::default();

    let mut codec_rejects = 0u64;
    let mut fixes = 0usize;
    let mut epochs = 0usize;
    let mut abs_errs = Vec::new();
    let mut worst: f64 = 0.0;

    // Both vehicles drive 1 m/s; simulated time equals the rear vehicle's
    // road metre, and the front vehicle stays exactly `gap_m` ahead.
    let total_m = p.warmup_m + s.duration_s as usize;
    for metre in 0..total_m {
        let t = metre as f64;
        for (node, offset) in [(&mut rear, 0.0), (&mut front, p.gap_m)] {
            let road_m = t + offset;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| Some(field(road_m, ch))),
            )
            .expect("synthetic drive never mismatches");
        }
        if metre < p.warmup_m {
            continue;
        }

        // Front vehicle beacons its recent context (1 Hz).
        let snap = front.snapshot(Some(p.context_m));
        if let Ok(wire) = try_encode_snapshot(&snap) {
            ep_front.broadcast(t, wire);
        }

        // Rear vehicle: time-aware receive → codec → inbox → graded fixes.
        for delivery in ep_rear.poll_until(t) {
            match decode_snapshot(&delivery.payload) {
                Ok(snap) => {
                    // Typed inbox rejections are counted by the inbox itself.
                    let _ = inbox.accept(snap, t);
                }
                Err(_) => codec_rejects += 1,
            }
        }
        epochs += 1;
        for (id, graded) in rear.fix_inbox_parallel(&inbox, t, &quality_cfg) {
            if id != Some(2) {
                continue;
            }
            if let Ok(graded) = graded {
                fixes += 1;
                let err = (graded.fix.distance_m - p.gap_m).abs();
                abs_errs.push(err);
                worst = worst.max(err);
            }
        }
    }

    // The per-grade quality counters accumulate in the node's registry as
    // `fix_inbox_parallel` grades each fix; read them back instead of
    // tallying grades by hand.
    let metrics = rear.registry().snapshot();
    let quality = [
        metrics.counter("rups_core_quality_grade_low").unwrap_or(0),
        metrics
            .counter("rups_core_quality_grade_medium")
            .unwrap_or(0),
        metrics.counter("rups_core_quality_grade_high").unwrap_or(0),
    ];

    CellOutcome {
        epochs,
        fixes,
        mean_abs_err_m: abs_errs.iter().sum::<f64>() / abs_errs.len().max(1) as f64,
        worst_abs_err_m: worst,
        codec_rejects,
        inbox_rejects: inbox.stats().rejected(),
        quality,
        graded_rejects: metrics.counter("rups_core_quality_rejected").unwrap_or(0),
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let mut x = Vec::new();
    let mut avail_y = Vec::new();
    let mut err_y = Vec::new();
    let mut notes = Vec::new();
    for (i, cell) in p.cells.iter().enumerate() {
        let out = run_cell(p, &cell.faults, p.scale.seed ^ 0xFA01 ^ (i as u64 * 131));
        let avail = out.fixes as f64 / out.epochs.max(1) as f64;
        x.push(cell.faults.expected_loss());
        avail_y.push(avail);
        err_y.push(out.mean_abs_err_m);
        notes.push(format!(
            "{}: availability {:.2} ({}/{} epochs), mean |err| {:.2} m (worst {:.2} m), \
             quality H/M/L {}/{}/{}, rejects codec {} inbox {} graded {}",
            cell.label,
            avail,
            out.fixes,
            out.epochs,
            out.mean_abs_err_m,
            out.worst_abs_err_m,
            out.quality[2],
            out.quality[1],
            out.quality[0],
            out.codec_rejects,
            out.inbox_rejects,
            out.graded_rejects,
        ));
    }
    notes.push(
        "damaged input surfaces as typed rejections and quality downgrades; \
         the fix pipeline never panics and never consumes unvetted context"
            .into(),
    );
    Figure {
        id: "ext-faults".into(),
        title: "Fix availability and error under V2V channel faults".into(),
        notes,
        series: vec![
            Series::new("fix availability vs expected loss", x.clone(), avail_y),
            Series::new("mean |error| (m) vs expected loss", x, err_y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_degrades_gracefully_under_burst_loss_and_corruption() {
        let p = quick_params();
        let fig = run(&p);
        let avail = &fig.series[0];
        let err = &fig.series[1];
        assert_eq!(avail.x.len(), p.cells.len());

        // The acceptance cell: ≥30 % expected burst loss + 1 % corruption.
        let accept = p
            .cells
            .iter()
            .position(|c| c.faults.expected_loss() >= 0.30 && c.faults.corrupt >= 0.01)
            .expect("default cells include the acceptance severity");
        assert!(
            (avail.x[accept] - 0.30).abs() < 1e-9,
            "expected loss {}",
            avail.x[accept]
        );
        // The node keeps producing fixes whenever valid snapshots arrive…
        assert!(
            avail.y[accept] > 0.3,
            "availability collapsed: {}",
            avail.y[accept]
        );
        // …and the fixes it does produce stay accurate.
        assert!(err.y[accept] < 5.0, "mean error {}", err.y[accept]);

        // The ideal channel is the ceiling: near-every epoch fixes, tightly.
        assert!(avail.y[0] > 0.9, "ideal availability {}", avail.y[0]);
        assert!(err.y[0] < 3.0, "ideal error {}", err.y[0]);
        // Faults only ever reduce availability relative to ideal.
        for (i, &a) in avail.y.iter().enumerate() {
            assert!(a <= avail.y[0] + 1e-9, "cell {i} beat the ideal channel");
        }
    }
}

//! Fig. 1: R-GSM-900 power measurements on two different roads, with the
//! first road entered twice (§III-A).
//!
//! The paper's figure is a spectrogram; as a text-friendly reduction we emit
//! the per-metre mean RSSI profile of each of the three trajectories and
//! report the Eq. (2) trajectory correlation coefficients, whose contrast
//! ("similar when collected on the same road at different time but quite
//! distinct when collected on different roads") is the figure's point.

use crate::series::{Figure, Series};
use gsm_sim::{EnvironmentClass, GsmEnvironment};
use rups_core::gsm::{GsmTrajectory, PowerVector};
use serde::{Deserialize, Serialize};

/// Parameters of the Fig. 1 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Master seed.
    pub seed: u64,
    /// Trajectory length, metres (paper: 150).
    pub len_m: usize,
    /// Band width, channels (paper: 194).
    pub n_channels: usize,
    /// Time between the two entries of road 1, seconds.
    pub revisit_gap_s: f64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            seed: 1,
            len_m: 150,
            n_channels: 194,
            revisit_gap_s: 1800.0,
        }
    }
}

/// Samples a GSM-aware trajectory: one power vector per metre along the
/// corridor at walking-the-road pace (1 m/s starting at `t0`).
pub fn sample_trajectory(env: &GsmEnvironment, len_m: usize, t0: f64) -> GsmTrajectory {
    let mut traj = GsmTrajectory::with_capacity(env.n_channels(), len_m);
    for i in 0..len_m {
        let pos = (100.0 + i as f64, 0.0);
        let pv = env.power_vector_dbm(pos, t0 + i as f64, 0.0);
        traj.push(&PowerVector::from_values(pv));
    }
    traj
}

fn mean_profile(traj: &GsmTrajectory) -> Vec<f64> {
    (0..traj.len())
        .map(|i| {
            let col = traj.power_at(i);
            col.mean().unwrap_or(f64::NAN)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let road1 = GsmEnvironment::new(p.seed, EnvironmentClass::SemiOpen, 2_000.0, p.n_channels);
    let road2 = GsmEnvironment::new(
        p.seed ^ 0xBEEF,
        EnvironmentClass::SemiOpen,
        2_000.0,
        p.n_channels,
    );

    let t1a = sample_trajectory(&road1, p.len_m, 0.0);
    let t1b = sample_trajectory(&road1, p.len_m, p.revisit_gap_s);
    let t2 = sample_trajectory(&road2, p.len_m, 0.0);

    let x: Vec<f64> = (0..p.len_m).map(|i| i as f64).collect();
    let series = vec![
        Series::new(
            "road 1, first entry (mean dBm/m)",
            x.clone(),
            mean_profile(&t1a),
        ),
        Series::new(
            "road 1, second entry (mean dBm/m)",
            x.clone(),
            mean_profile(&t1b),
        ),
        Series::new("road 2 (mean dBm/m)", x, mean_profile(&t2)),
    ];

    let r_same = t1a
        .correlation(0..p.len_m, &t1b, 0..p.len_m, None)
        .unwrap_or(f64::NAN);
    let r_diff = t1a
        .correlation(0..p.len_m, &t2, 0..p.len_m, None)
        .unwrap_or(f64::NAN);
    Figure {
        id: "fig1".into(),
        title: "GSM power measurements on two roads, first road entered twice".into(),
        notes: vec![
            format!("trajectory correlation, same road two entries: {r_same:.3} (scale [-2,2])"),
            format!("trajectory correlation, different roads:        {r_diff:.3}"),
            "paper: same-road trajectories look alike, different roads are distinct".into(),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_road_correlates_different_roads_do_not() {
        let p = Params {
            n_channels: 64,
            len_m: 120,
            ..Default::default()
        };
        let fig = run(&p);
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].x.len(), 120);
        let r_same: f64 = fig.notes[0]
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let r_diff: f64 = fig.notes[1]
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(r_same > 1.2, "same-road correlation {r_same}");
        assert!(
            r_diff < r_same - 0.5,
            "contrast too weak: same {r_same} diff {r_diff}"
        );
    }
}

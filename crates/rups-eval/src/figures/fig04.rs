//! Fig. 4: fine resolution — relative change of power vectors over distance
//! (§III-D).
//!
//! One thousand random power vectors; for each, the vector `k` metres
//! behind on the same trajectory is compared with Eq. (3)
//! (`‖X − X′‖/‖X‖`), for `k` from 1 to 120 m. The paper's anchor: the mean
//! relative change already exceeds ≈0.4 at one metre and rises slowly with
//! distance — GSM-aware trajectories resolve displacement at metre scale.
//!
//! RSSI values enter Eq. (3) in RXLEV-like units (dBm + 110, the GSM
//! receiver-level convention) — a norm over raw negative dBm values would
//! be dominated by the −110 dBm floor offset rather than by signal
//! structure.

use crate::series::{Figure, Series};
use gsm_sim::{EnvironmentClass, GsmEnvironment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rups_core::stats::relative_change;
use serde::{Deserialize, Serialize};

/// Parameters of the Fig. 4 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Master seed.
    pub seed: u64,
    /// Number of reference power vectors (paper: 1000).
    pub n_vectors: usize,
    /// Maximum displacement, metres (paper: 120).
    pub max_distance_m: usize,
    /// Band width.
    pub n_channels: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            seed: 4,
            n_vectors: 1000,
            max_distance_m: 120,
            n_channels: 194,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        n_vectors: 120,
        max_distance_m: 60,
        n_channels: 64,
        ..Default::default()
    }
}

/// dBm → RXLEV-like non-negative level.
fn rxlev(v: &[f32]) -> Vec<f32> {
    v.iter().map(|&x| (x + 110.0).clamp(0.0, 63.0)).collect()
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let env = GsmEnvironment::new(p.seed, EnvironmentClass::SemiOpen, 12_000.0, p.n_channels);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xF164);

    // Mean relative change per displacement (plus 10th/90th percentiles to
    // stand in for the paper's scatter).
    let ks: Vec<usize> = (1..=p.max_distance_m).collect();
    let mut mean_y = Vec::with_capacity(ks.len());
    let mut p10_y = Vec::with_capacity(ks.len());
    let mut p90_y = Vec::with_capacity(ks.len());

    // Reference positions (x must leave room for the vector behind).
    let refs: Vec<f64> = (0..p.n_vectors)
        .map(|_| rng.gen_range(200.0 + p.max_distance_m as f64..11_800.0))
        .collect();

    for &k in &ks {
        let mut ds: Vec<f64> = refs
            .iter()
            .filter_map(|&x| {
                // Both vectors measured on the same pass (same wall time as
                // the vehicle would see them, 1 m/s for concreteness).
                let a = rxlev(&env.power_vector_dbm((x, 0.0), x, 0.0));
                let b = rxlev(&env.power_vector_dbm((x - k as f64, 0.0), x - k as f64, 0.0));
                relative_change(&a, &b)
            })
            .collect();
        ds.sort_by(|a, b| a.total_cmp(b));
        let n = ds.len();
        mean_y.push(ds.iter().sum::<f64>() / n.max(1) as f64);
        p10_y.push(ds[(n as f64 * 0.1) as usize]);
        p90_y.push(ds[((n as f64 * 0.9) as usize).min(n - 1)]);
    }

    let x: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let at_1m = mean_y[0];
    let at_max = *mean_y.last().unwrap();
    Figure {
        id: "fig4".into(),
        title: "Relative change of two power vectors over distance".into(),
        notes: vec![
            format!("mean relative change at 1 m: {at_1m:.2} (paper: ≈0.4)"),
            format!(
                "mean relative change at {} m: {at_max:.2}",
                p.max_distance_m
            ),
            "relative change rises slowly with displacement (paper: slight rise)".into(),
        ],
        series: vec![
            Series::new("mean relative change", x.clone(), mean_y),
            Series::new("10th percentile", x.clone(), p10_y),
            Series::new("90th percentile", x, p90_y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_anchor_holds() {
        let fig = run(&quick_params());
        let mean = &fig.series[0];
        // ≥ 0.25 at one metre (the paper's 0.4 with their exact units; the
        // shape requirement is "large already at 1 m").
        assert!(mean.y[0] > 0.2, "relative change at 1 m: {}", mean.y[0]);
        // Rises (weakly) with distance: last ≥ first.
        let first = mean.y[0];
        let last = *mean.y.last().unwrap();
        assert!(last >= first * 0.9, "first {first}, last {last}");
        // The trend over the span is upward overall.
        let mid = mean.y[mean.y.len() / 2];
        assert!(last >= first || mid >= first, "no upward trend");
    }

    #[test]
    fn percentile_bands_bracket_the_mean() {
        let fig = run(&quick_params());
        let (mean, p10, p90) = (&fig.series[0], &fig.series[1], &fig.series[2]);
        for i in 0..mean.y.len() {
            assert!(p10.y[i] <= mean.y[i] + 1e-9);
            assert!(p90.y[i] >= mean.y[i] - 1e-9);
        }
    }
}

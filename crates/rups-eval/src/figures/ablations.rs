//! Accuracy ablations of the RUPS design choices (DESIGN.md §5).
//!
//! The `rups-bench` crate measures what each knob *costs*; these experiments
//! measure what each knob *buys*, on a common trace:
//!
//! * [`window_length`] — checking-window length sweep (§V-A fixes 85–100 m;
//!   shorter windows are cheaper and respond faster after turns, §V-C).
//! * [`channel_count`] — window width sweep (the paper picks the top 45
//!   channels of 115 scanned; how few suffice?).
//! * [`interpolation`] — missing-channel interpolation on/off (§IV-C) at 1
//!   and 4 radios; the off-variant matches on raw NaN-holed contexts.

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times, summarize_rde};
use crate::series::{render_table, Figure, Series};
use crate::tracegen::{generate, ScenarioTrace, TraceConfig};
use rups_core::config::RupsConfig;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters shared by the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
    /// Road setting.
    pub road: RoadClass,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            road: RoadClass::Urban4Lane,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        ..Default::default()
    }
}

fn base_trace(p: &Params, radios: usize) -> ScenarioTrace {
    let s = &p.scale;
    generate(&TraceConfig {
        n_channels: s.n_channels,
        scanned_channels: s.scanned_channels,
        route_len_m: s.route_len_m(),
        duration_s: s.duration_s,
        leader_radios: radios,
        follower_radios: radios,
        ..TraceConfig::new(s.seed ^ 0xAB1A, p.road)
    })
}

fn mean_and_rate(trace: &ScenarioTrace, cfg: &RupsConfig, scale: &EvalScale) -> (Option<f64>, f64) {
    let times = sample_query_times(trace, scale.n_queries, scale.seed ^ 0xAB1B);
    let outcomes = run_queries(trace, cfg, &times);
    summarize_rde(&outcomes)
}

/// Window-length accuracy sweep.
pub fn window_length(p: &Params) -> Figure {
    let trace = base_trace(p, 4);
    let mut x = Vec::new();
    let mut mean_y = Vec::new();
    let mut rate_y = Vec::new();
    for w in [25usize, 45, 65, 85, 120] {
        let cfg = RupsConfig {
            window_len_m: w,
            ..p.scale.rups_config()
        };
        let (mean, rate) = mean_and_rate(&trace, &cfg, &p.scale);
        x.push(w as f64);
        mean_y.push(mean.unwrap_or(f64::NAN));
        rate_y.push(rate);
    }
    let best = x
        .iter()
        .zip(&mean_y)
        .filter(|(_, m)| m.is_finite())
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(w, m)| format!("best mean RDE at w = {w} m: {m:.1} m"))
        .unwrap_or_else(|| "no fixes".into());
    Figure {
        id: "abl-window".into(),
        title: "Ablation: checking-window length vs accuracy".into(),
        notes: vec![best, "paper operating point: 85 m (§VI-B)".into()],
        series: vec![
            Series::new("mean RDE (m) vs window (m)", x.clone(), mean_y),
            Series::new("answer rate vs window (m)", x, rate_y),
        ],
    }
}

/// Window-width (channel count) accuracy sweep.
pub fn channel_count(p: &Params) -> Figure {
    let trace = base_trace(p, 4);
    let mut x = Vec::new();
    let mut mean_y = Vec::new();
    let mut rate_y = Vec::new();
    let max_k = p.scale.n_channels;
    for k in [6usize, 12, 24, 45, 90] {
        if k > max_k {
            break;
        }
        let cfg = RupsConfig {
            window_channels: k,
            ..p.scale.rups_config()
        };
        let (mean, rate) = mean_and_rate(&trace, &cfg, &p.scale);
        x.push(k as f64);
        mean_y.push(mean.unwrap_or(f64::NAN));
        rate_y.push(rate);
    }
    Figure {
        id: "abl-channels".into(),
        title: "Ablation: checking-window width (top-k channels) vs accuracy".into(),
        notes: vec![format!(
            "rates across k: {:?} (paper picks the top 45 of 115 scanned)",
            x.iter()
                .zip(&rate_y)
                .map(|(k, r)| format!("k={k}: {r:.2}"))
                .collect::<Vec<_>>()
        )],
        series: vec![
            Series::new("mean RDE (m) vs channels", x.clone(), mean_y),
            Series::new("answer rate vs channels", x, rate_y),
        ],
    }
}

/// Missing-channel interpolation on/off, at 1 and 4 radios.
pub fn interpolation(p: &Params) -> Figure {
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for radios in [1usize, 4] {
        let trace = base_trace(p, radios);
        for interp in [true, false] {
            let cfg = RupsConfig {
                interpolate_missing: interp,
                ..p.scale.rups_config()
            };
            let (mean, rate) = mean_and_rate(&trace, &cfg, &p.scale);
            rows.push(vec![
                format!("{radios} radio(s)"),
                if interp { "interpolated" } else { "raw NaN" }.to_string(),
                mean.map_or("—".into(), |m| format!("{m:.1}")),
                format!("{rate:.2}"),
            ]);
            series.push(Series::new(
                format!("{radios} radios, interp={interp}: (rate, mean RDE)"),
                vec![rate],
                vec![mean.unwrap_or(f64::NAN)],
            ));
        }
    }
    let table = render_table(
        &["radios", "missing channels", "mean RDE (m)", "answer rate"],
        &rows,
    );
    let mut notes: Vec<String> = table.lines().map(str::to_owned).collect();
    notes.push("§IV-C: interpolation matters most when sweeps are slow (few radios)".into());
    Figure {
        id: "abl-interp".into(),
        title: "Ablation: missing-channel interpolation (§IV-C)".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sweep_produces_monotone_axes() {
        let fig = window_length(&quick_params());
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series[0].x.windows(2).all(|w| w[0] < w[1]));
        // At least one window length answers queries at quick scale.
        assert!(fig.series[1].y.iter().any(|&r| r > 0.0));
    }

    #[test]
    fn wider_windows_do_not_destroy_answer_rates() {
        let fig = channel_count(&quick_params());
        let rates = &fig.series[1].y;
        assert!(!rates.is_empty());
        let last = *rates.last().unwrap();
        assert!(last > 0.3, "rate at max k: {last}");
    }

    #[test]
    fn interpolation_helps_single_radio_answer_rate() {
        let fig = interpolation(&quick_params());
        // Rows: (1, on), (1, off), (4, on), (4, off); series carry (rate, mean).
        let rate = |i: usize| fig.series[i].x[0];
        assert!(
            rate(0) >= rate(1) - 0.1,
            "1 radio: interpolation on ({}) should not lose to off ({})",
            rate(0),
            rate(1)
        );
    }
}

//! Extension experiment: many-vehicle serving throughput of the sharded
//! fleet layer (`rups-fleet`).
//!
//! The paper evaluates RUPS on a single vehicle pair; [`ext_scalability`]
//! sweeps all-neighbour queries in a small convoy on one engine. This
//! experiment measures the *system* path instead: hundreds of vehicles on
//! one 8-lane road, bucketed by a uniform-grid [`CellIndex`], owned by
//! geographic shards with cross-shard beacon routing, and queried by the
//! work-stealing epoch scheduler. Each `(fleet size × worker count)` cell
//! runs the same scenario and records:
//!
//! * **Sub-quadratic pair workload** — ordered halo candidates per epoch
//!   versus the all-pairs bound `n·(n−1)`; the committed artefact asserts
//!   the halo keeps a large fleet far below the quadratic bound.
//! * **Worker scaling** — successful fixes per query-phase wall second at
//!   1, 2, … workers, plus the per-core rate; the scheduler's determinism
//!   guarantee means every worker count produces the *same* fixes, so the
//!   curves measure pure execution speed.
//! * **Machinery coverage** — shard re-homings, cross-shard relays and
//!   steal counts, proving the run exercised the layer rather than one
//!   degenerate shard.
//!
//! Committed artefact: `results/ext-fleet-scale.json`.
//!
//! [`ext_scalability`]: crate::figures::ext_scalability
//! [`CellIndex`]: rups_fleet::CellIndex

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_fleet::{FleetConfig, FleetSim};
use serde::{Deserialize, Serialize};

/// Parameters of the fleet-scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (master seed; durations are fleet-specific below).
    pub scale: EvalScale,
    /// Fleet sizes swept (ids `1..=n`).
    pub vehicle_counts: Vec<usize>,
    /// Scheduler worker counts swept per fleet size.
    pub worker_counts: Vec<usize>,
    /// Lanes the fleet occupies round-robin.
    pub lanes: usize,
    /// Initial within-lane spacing, metres.
    pub initial_gap_m: f64,
    /// Cell side of the spatial index, metres.
    pub cell_m: f64,
    /// Fix-query neighbour radius, metres (≤ `cell_m`).
    pub radius_m: f64,
    /// Geographic shards.
    pub n_shards: usize,
    /// GSM channels carried in contexts.
    pub n_channels: usize,
    /// Snapshot length broadcast each epoch, metres.
    pub context_m: usize,
    /// Maximum retained context, metres.
    pub max_context_m: usize,
    /// Warm-up epochs before measurement.
    pub warmup_s: usize,
    /// Measured epochs per cell.
    pub epochs: usize,
    /// Where to write the machine-readable artefact; `None` skips it.
    pub out_path: Option<String>,
}

/// Default home of the committed artefact, resolved against the
/// workspace so it lands in `results/` regardless of invocation
/// directory.
pub fn default_artifact_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-fleet-scale.json"
    )
    .to_string()
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            vehicle_counts: vec![60, 120, 240],
            worker_counts: vec![1, 2, 4],
            lanes: 2,
            initial_gap_m: 45.0,
            cell_m: 60.0,
            radius_m: 60.0,
            n_shards: 4,
            n_channels: 48,
            context_m: 200,
            max_context_m: 280,
            warmup_s: 40,
            epochs: 4,
            out_path: Some(default_artifact_path()),
        }
    }
}

/// Smaller sweep for `--quick` smoke passes; still crosses the 200-vehicle
/// mark so the sub-quadratic claim is asserted at scale.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        vehicle_counts: vec![72, 216],
        worker_counts: vec![1, 2],
        n_channels: 32,
        context_m: 140,
        max_context_m: 220,
        warmup_s: 30,
        epochs: 2,
        ..Params::default()
    }
}

/// One `(fleet size × worker count)` cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Fleet size.
    pub n_vehicles: usize,
    /// Scheduler workers.
    pub workers: usize,
    /// Measured epochs.
    pub epochs: usize,
    /// Successful graded fixes over all epochs.
    pub fixes_ok: usize,
    /// Fix queries scheduled over all epochs.
    pub tasks: usize,
    /// Ordered halo candidates over all epochs (the workload the index
    /// admitted for radius filtering).
    pub candidates: usize,
    /// The all-pairs bound `epochs · n · (n − 1)` the halo is measured
    /// against.
    pub pair_bound: usize,
    /// `candidates / pair_bound` — the sub-quadratic headline.
    pub halo_fraction: f64,
    /// Scheduler steal operations over all epochs.
    pub steals: u64,
    /// Shard re-homings over all measured epochs.
    pub rehomes: usize,
    /// Cross-shard beacons relayed over all measured epochs.
    pub relayed: usize,
    /// Wall-clock seconds in the parallel query phase.
    pub query_wall_s: f64,
    /// Successful fixes per query-phase wall second.
    pub fixes_per_sec: f64,
    /// `fixes_per_sec / workers` — the per-core serving rate.
    pub fixes_per_sec_per_core: f64,
    /// Mean `|fix − truth|` over successful fixes of the final epoch,
    /// metres.
    pub mean_abs_err_m: f64,
}

/// The machine-readable artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleArtifact {
    /// Always `"ext-fleet-scale"`.
    pub figure_id: String,
    /// Hardware threads available where the artefact was generated.
    /// Worker-scaling comparisons are only meaningful when this is > 1 —
    /// on a single-core box the wall clock cannot show a speedup, so
    /// consumers (CI asserts, the in-crate test) gate on it.
    pub threads_available: usize,
    /// Geographic shards every cell ran with.
    pub n_shards: usize,
    /// Cell side of the spatial index, metres.
    pub cell_m: f64,
    /// Fix-query radius, metres.
    pub radius_m: f64,
    /// One entry per `(fleet size × worker count)` cell, fleet-size-major
    /// in sweep order.
    pub cells: Vec<ScaleCell>,
}

fn run_cell(p: &Params, n_vehicles: usize, workers: usize) -> ScaleCell {
    let run = FleetSim::run(FleetConfig {
        seed: p.scale.seed,
        n_vehicles,
        lanes: p.lanes,
        initial_gap_m: p.initial_gap_m,
        n_shards: p.n_shards,
        workers,
        cell_m: p.cell_m,
        radius_m: p.radius_m,
        n_channels: p.n_channels,
        max_context_m: p.max_context_m,
        context_m: p.context_m,
        warmup_s: p.warmup_s,
        epochs: p.epochs,
        ..FleetConfig::default()
    });
    let fixes_ok = run.fixes_ok();
    let tasks: usize = run.epochs.iter().map(|e| e.tasks).sum();
    let candidates: usize = run.epochs.iter().map(|e| e.candidates).sum();
    let pair_bound = p.epochs * n_vehicles * (n_vehicles - 1);
    let query_wall_s = run.query_wall_s();
    let fixes_per_sec = run.fixes_per_sec();
    ScaleCell {
        n_vehicles,
        workers,
        epochs: p.epochs,
        fixes_ok,
        tasks,
        candidates,
        pair_bound,
        halo_fraction: candidates as f64 / pair_bound as f64,
        steals: run.epochs.iter().map(|e| e.steals.steals).sum(),
        rehomes: run.epochs.iter().map(|e| e.rehomes).sum(),
        relayed: run.epochs.iter().map(|e| e.relayed).sum(),
        query_wall_s,
        fixes_per_sec,
        fixes_per_sec_per_core: fixes_per_sec / workers as f64,
        mean_abs_err_m: run
            .epochs
            .last()
            .and_then(|e| e.mean_abs_err_m())
            .unwrap_or(f64::NAN),
    }
}

/// Runs the sweep, writing the artefact when a path is set.
pub fn run(p: &Params) -> Figure {
    let mut cells = Vec::new();
    for &n in &p.vehicle_counts {
        for &w in &p.worker_counts {
            cells.push(run_cell(p, n, w));
        }
    }
    let artifact = ScaleArtifact {
        figure_id: "ext-fleet-scale".into(),
        threads_available: std::thread::available_parallelism().map_or(1, |n| n.get()),
        n_shards: p.n_shards,
        cell_m: p.cell_m,
        radius_m: p.radius_m,
        cells,
    };

    let mut notes = Vec::new();
    if let Some(path) = &p.out_path {
        write_artifact(path, &artifact);
        notes.push(format!("fleet-scale artefact written to {path}"));
    }
    for c in &artifact.cells {
        notes.push(format!(
            "n={} w={}: {} fixes in {:.3} s ({:.0}/s, {:.0}/s/core), halo {}/{} pairs ({:.1} %), \
             {} steals, {} rehomes, {} relays, err {:.2} m",
            c.n_vehicles,
            c.workers,
            c.fixes_ok,
            c.query_wall_s,
            c.fixes_per_sec,
            c.fixes_per_sec_per_core,
            c.candidates,
            c.pair_bound,
            100.0 * c.halo_fraction,
            c.steals,
            c.rehomes,
            c.relayed,
            c.mean_abs_err_m,
        ));
    }
    if let (Some(&n_max), Some(&w_max)) =
        (p.vehicle_counts.iter().max(), p.worker_counts.iter().max())
    {
        let rate = |w: usize| {
            artifact
                .cells
                .iter()
                .find(|c| c.n_vehicles == n_max && c.workers == w)
                .map(|c| c.fixes_per_sec)
        };
        if let (Some(one), Some(many)) = (rate(1), rate(w_max)) {
            if one > 0.0 {
                notes.push(format!(
                    "n={n_max}: {w_max}-worker speedup over 1 worker = {:.2}× \
                     ({} hardware threads available)",
                    many / one,
                    artifact.threads_available,
                ));
            }
        }
    }

    let x: Vec<f64> = p.vehicle_counts.iter().map(|&n| n as f64).collect();
    let mut series = Vec::new();
    for &w in &p.worker_counts {
        let y: Vec<f64> = p
            .vehicle_counts
            .iter()
            .map(|&n| {
                artifact
                    .cells
                    .iter()
                    .find(|c| c.n_vehicles == n && c.workers == w)
                    .map_or(0.0, |c| c.fixes_per_sec)
            })
            .collect();
        series.push(Series::new(
            format!("fixes per second, {w} worker(s)"),
            x.clone(),
            y,
        ));
    }
    series.push(Series::new(
        "halo candidates / all pairs",
        x.clone(),
        p.vehicle_counts
            .iter()
            .map(|&n| {
                artifact
                    .cells
                    .iter()
                    .find(|c| c.n_vehicles == n)
                    .map_or(0.0, |c| c.halo_fraction)
            })
            .collect(),
    ));

    Figure {
        id: "ext-fleet-scale".into(),
        title: "Sharded fleet serving throughput vs fleet size and workers".into(),
        notes,
        series,
    }
}

/// Serialises the artefact to `path`, creating parent directories.
fn write_artifact(path: &str, artifact: &ScaleArtifact) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create fleet-scale output dir");
    }
    let json = serde_json::to_string_pretty(artifact).expect("serialize fleet-scale artifact");
    std::fs::write(p, json).expect("write fleet-scale artifact");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_stays_subquadratic_and_workers_agree() {
        // Small fleet so the debug-build test stays quick; the quick/paper
        // sweeps cross 200 vehicles in the release smoke run.
        let mut p = quick_params();
        p.vehicle_counts = vec![48];
        p.worker_counts = vec![1, 2];
        p.warmup_s = 20;
        p.epochs = 2;
        let out = std::env::temp_dir().join("rups-ext-fleet-scale-test.json");
        p.out_path = Some(out.to_string_lossy().into_owned());
        let fig = run(&p);

        let raw = std::fs::read_to_string(&out).expect("artefact written");
        std::fs::remove_file(&out).ok();
        let art: ScaleArtifact = serde_json::from_str(&raw).expect("artefact parses");
        assert_eq!(art.figure_id, "ext-fleet-scale");
        assert_eq!(art.cells.len(), 2);

        for c in &art.cells {
            assert!(c.fixes_ok > 0, "cell produced no fixes: {c:?}");
            // The tentpole claim: the 3×3 halo admits far fewer ordered
            // pairs than the quadratic bound.
            assert!(
                c.halo_fraction < 0.5,
                "halo fraction {:.3} not sub-quadratic: {c:?}",
                c.halo_fraction
            );
            assert!(c.tasks <= c.candidates);
            assert!(c.mean_abs_err_m.is_finite() && c.mean_abs_err_m < 15.0);
        }
        // Determinism: worker count changes throughput, never results.
        assert_eq!(art.cells[0].fixes_ok, art.cells[1].fixes_ok);
        assert_eq!(art.cells[0].tasks, art.cells[1].tasks);

        // Worker scaling is a wall-clock claim, only checkable where the
        // hardware can actually run workers side by side.
        if art.threads_available > 1 {
            assert!(
                art.cells[1].fixes_per_sec > art.cells[0].fixes_per_sec,
                "2 workers not faster than 1 on {} threads: {:?}",
                art.threads_available,
                art.cells
            );
        }

        // One throughput series per worker count plus the halo series.
        assert_eq!(fig.series.len(), p.worker_counts.len() + 1);
    }
}

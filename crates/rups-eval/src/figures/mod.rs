//! One module per reproduced paper figure/table.
//!
//! * [`fig01`] — GSM power spectrograms on two roads (§III-A, Fig. 1)
//! * [`fig02`] — temporal stability of power vectors (§III-B, Fig. 2)
//! * [`fig03`] — geographical uniqueness CDFs (§III-C, Fig. 3)
//! * [`fig04`] — relative change vs displacement (§III-D, Fig. 4)
//! * [`cost`] — SYN-search computational cost (§V-A)
//! * [`comm`] — context exchange cost over 802.11p (§V-B)
//! * [`fig09`] — SYN-point error vs radio count/placement (§VI-B, Fig. 9)
//! * [`fig10`] — single vs multi-SYN aggregation under passing vehicles
//!   (§VI-C, Fig. 10)
//! * [`fig11`] — mean RDE across environments × radio configs (§VI-C,
//!   Fig. 11)
//! * [`fig12`] — RUPS vs GPS across urban environments (§VI-D, Fig. 12)
//!
//! Extensions beyond the paper's figures:
//!
//! * [`ext_diagnosis`] — online anomaly detection and automated diagnosis
//!   of three staged degradations (burst loss, clock jump, slowdown)
//! * [`ext_faults`] — fix availability/error under V2V channel faults
//!   (burst loss, corruption; hardening of §V-B)
//! * [`ext_fpr`] — detection vs false-positive rate of the adaptive short
//!   window (quantifies the §V-C claim)
//! * [`ext_fleet_observability`] — fleet-wide distributed tracing, metrics
//!   aggregation and SLO evaluation over a 6-vehicle faulted convoy
//! * [`ext_fleet_scale`] — sharded many-vehicle serving throughput: halo
//!   pair workload vs the quadratic bound and worker-scaling curves
//! * [`ext_fusion`] — cooperative fix-graph fusion in an n-vehicle convoy:
//!   fused vs best-pairwise error and pair coverage under channel faults
//! * [`ext_multiband`] — FM-band fingerprint fusion (§VII future work)
//! * [`ext_observability`] — unified telemetry under fault injection:
//!   per-epoch metric timelines from one shared registry
//! * [`ext_pedestrian`] — RUPS at walking/cycling speeds (§VII future work)
//! * [`ext_scalability`] — all-neighbour query sweeps in an n-vehicle convoy (§V-B)
//! * [`ablations`] — accuracy ablations of the design knobs (DESIGN.md §5)

use rups_core::config::RupsConfig;
use serde::{Deserialize, Serialize};

pub mod ablations;
pub mod comm;
pub mod cost;
pub mod ext_diagnosis;
pub mod ext_faults;
pub mod ext_fleet_observability;
pub mod ext_fleet_scale;
pub mod ext_fpr;
pub mod ext_fusion;
pub mod ext_multiband;
pub mod ext_observability;
pub mod ext_pedestrian;
pub mod ext_scalability;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;

/// Global knobs controlling how big the accuracy experiments run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalScale {
    /// Master seed.
    pub seed: u64,
    /// Query points per experiment cell (paper: 500–1000).
    pub n_queries: usize,
    /// Drive duration per trace, seconds.
    pub duration_s: f64,
    /// Channels in the trajectory band.
    pub n_channels: usize,
    /// Channels swept by the scanners.
    pub scanned_channels: usize,
    /// Independent traces (seeds) each experiment cell averages over;
    /// queries are split across them. Odometry biases and occlusion draws
    /// vary per trace, so multi-seed cells report far more stable means.
    pub n_seeds: usize,
}

impl EvalScale {
    /// Paper-scale runs (use a release build; several seconds per figure).
    pub fn paper() -> Self {
        Self {
            seed: 20160523,
            n_queries: 500,
            duration_s: 900.0,
            n_channels: 194,
            scanned_channels: 115,
            n_seeds: 3,
        }
    }

    /// Reduced scale for unit tests and debug builds.
    pub fn quick() -> Self {
        Self {
            seed: 20160523,
            n_queries: 10,
            duration_s: 240.0,
            n_channels: 64,
            scanned_channels: 48,
            n_seeds: 1,
        }
    }

    /// The RUPS configuration used in the accuracy experiments: the paper's
    /// defaults, adapted to the band width of this scale.
    pub fn rups_config(&self) -> RupsConfig {
        RupsConfig {
            n_channels: self.n_channels,
            // The paper's 45-channel window presumes the 194-channel band;
            // scale the width down for reduced bands so the window is not
            // padded with noise-floor channels.
            window_channels: if self.n_channels >= 194 {
                45
            } else {
                24.min(self.n_channels)
            },
            ..RupsConfig::default()
        }
    }

    /// The trace seeds of one experiment cell (`base` distinguishes cells).
    pub fn trace_seeds(&self, base: u64) -> Vec<u64> {
        (0..self.n_seeds.max(1))
            .map(|i| self.seed ^ base ^ (i as u64 * 7919))
            .collect()
    }

    /// Query points charged to each trace of a cell.
    pub fn queries_per_seed(&self) -> usize {
        (self.n_queries / self.n_seeds.max(1)).max(1)
    }

    /// Route long enough that the drive never runs off the end.
    pub fn route_len_m(&self) -> f64 {
        // Generous upper bound: 20 m/s × duration + margin.
        20.0 * self.duration_s + 2_000.0
    }
}

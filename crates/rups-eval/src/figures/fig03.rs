//! Fig. 3: geographical uniqueness of GSM-aware trajectories (§III-C).
//!
//! CDFs of the Eq. (2) trajectory correlation coefficient over pairs of
//! trajectories collected (a) on the same road at different entries and
//! (b) on different roads, each under workday and weekend radio activity.
//! The paper's reading: same-road mass sits far right of different-road
//! mass — trajectories are geographically unique.

use crate::figures::fig01::sample_trajectory;
use crate::series::{Figure, Series};
use gsm_sim::{EnvironmentClass, GsmEnvironment, PropagationParams};
use serde::{Deserialize, Serialize};

/// Parameters of the Fig. 3 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Master seed.
    pub seed: u64,
    /// Number of distinct roads (paper: 200 segments).
    pub n_roads: usize,
    /// Trajectory length, metres (paper: 150).
    pub len_m: usize,
    /// Band width.
    pub n_channels: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            seed: 3,
            n_roads: 60,
            len_m: 150,
            n_channels: 194,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        n_roads: 10,
        len_m: 100,
        n_channels: 48,
        ..Default::default()
    }
}

/// Workday vs weekend: weekday spectrum activity (interference bursts and
/// temporal jitter) is heavier.
fn day_params(base: PropagationParams, workday: bool) -> PropagationParams {
    let k = if workday { 1.4 } else { 0.7 };
    PropagationParams {
        burst_prob_per_slot: (base.burst_prob_per_slot * k).min(0.5),
        temporal_fast_sigma_db: base.temporal_fast_sigma_db * k,
        ..base
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let base = EnvironmentClass::SemiOpen.params();
    let mut series = Vec::new();
    let mut same_means = Vec::new();
    let mut diff_means = Vec::new();

    for (workday, day_label) in [(true, "workday"), (false, "weekend")] {
        let params = day_params(base.clone(), workday);
        let envs: Vec<GsmEnvironment> = (0..p.n_roads)
            .map(|i| {
                GsmEnvironment::with_params(
                    p.seed ^ (i as u64) << 8,
                    EnvironmentClass::SemiOpen,
                    params.clone(),
                    2_000.0,
                    p.n_channels,
                )
            })
            .collect();

        // Same road, different entries (half an hour apart).
        let mut same = Vec::new();
        for env in &envs {
            let a = sample_trajectory(env, p.len_m, 0.0);
            let b = sample_trajectory(env, p.len_m, 1800.0);
            if let Some(r) = a.correlation(0..p.len_m, &b, 0..p.len_m, None) {
                same.push(r);
            }
        }
        // Different roads (consecutive pairs, same entry time).
        let mut diff = Vec::new();
        for pair in envs.windows(2) {
            let a = sample_trajectory(&pair[0], p.len_m, 0.0);
            let b = sample_trajectory(&pair[1], p.len_m, 0.0);
            if let Some(r) = a.correlation(0..p.len_m, &b, 0..p.len_m, None) {
                diff.push(r);
            }
        }
        same_means.push(same.iter().sum::<f64>() / same.len().max(1) as f64);
        diff_means.push(diff.iter().sum::<f64>() / diff.len().max(1) as f64);
        series.push(Series::cdf(format!("different entries, {day_label}"), same));
        series.push(Series::cdf(format!("different roads, {day_label}"), diff));
    }

    Figure {
        id: "fig3".into(),
        title: "CDF of correlation coefficient of GSM-aware trajectories".into(),
        notes: vec![
            format!(
                "mean same-road correlation: workday {:.2}, weekend {:.2} (scale [-2,2])",
                same_means[0], same_means[1]
            ),
            format!(
                "mean different-road correlation: workday {:.2}, weekend {:.2}",
                diff_means[0], diff_means[1]
            ),
            "paper: same-road coefficients are much higher than different-road".into(),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_road_mass_is_right_of_different_road_mass() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 4);
        // Compare medians: same-road ≫ different-road, both days.
        for day in 0..2 {
            let same = &fig.series[day * 2];
            let diff = &fig.series[day * 2 + 1];
            let m_same = same.percentile(50.0);
            let m_diff = diff.percentile(50.0);
            assert!(
                m_same > m_diff + 0.5,
                "day {day}: same median {m_same}, diff median {m_diff}"
            );
            assert!(m_same > 1.0, "same-road median {m_same} too low");
            assert!(m_diff < 1.0, "diff-road median {m_diff} too high");
        }
    }

    #[test]
    fn weekend_is_at_least_as_stable_as_workday() {
        let fig = run(&quick_params());
        // Heavier workday activity should not make same-road correlation
        // *higher* than the weekend's.
        let workday = fig.series[0].percentile(50.0);
        let weekend = fig.series[2].percentile(50.0);
        assert!(
            weekend >= workday - 0.1,
            "workday {workday}, weekend {weekend}"
        );
    }
}

//! Extension experiment: cooperative fix-graph fusion in an N-vehicle
//! convoy under channel faults (the `rups-fuse` crate end-to-end).
//!
//! Every vehicle of the convoy beacons its journey context once per
//! second through one shared [`V2vLink`] carrying the PR 2 fault model,
//! and runs the hardened receive path (codec validation →
//! [`SnapshotInbox`] vetting). At each fuse epoch every vehicle grades
//! fixes against every snapshot it holds via [`fix_inbox_parallel`]; the
//! epoch's graded fixes become a [`FixGraph`] and the [`Fuser`] solves it
//! into one consistent set of relative positions. Per severity cell we
//! compare, over the pairs that have at least one *direct* fix that
//! epoch:
//!
//! * **best pairwise error** — |estimate − truth| of the highest-weight
//!   direct fix of the pair (the strongest answer available without
//!   fusion), and
//! * **fused error** — |fused displacement − truth| for the same pair,
//!
//! plus the *coverage* of each approach: the fraction of all vehicle
//! pairs with any estimate at all. Fusion's two claims under test: cycle
//! redundancy averages independent errors down (fused mean error below
//! the best pairwise mean even at ≥30 % burst loss), and graph
//! connectivity answers pairs no direct fix covers (a chain of short
//! fixes reaches vehicles whose shared context is too small for a direct
//! SYN match).
//!
//! [`V2vLink`]: v2v_sim::link::V2vLink
//! [`SnapshotInbox`]: rups_core::inbox::SnapshotInbox
//! [`fix_inbox_parallel`]: rups_core::pipeline::RupsNode::fix_inbox_parallel
//! [`FixGraph`]: rups_fuse::FixGraph
//! [`Fuser`]: rups_fuse::Fuser

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_core::geo::GeoSample;
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::{GradedFix, RupsNode};
use rups_core::quality::QualityConfig;
use rups_core::testfield;
use rups_fuse::{weight_for, FixGraph, FuseConfig, Fuser};
use rups_obs::Registry;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use v2v_sim::codec::{decode_snapshot, try_encode_snapshot};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

/// One fault-severity cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Legend label.
    pub label: String,
    /// The channel impairments of this cell.
    pub faults: FaultConfig,
}

/// Parameters of the fusion experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (duration, band width, master seed).
    pub scale: EvalScale,
    /// Convoy size (ids `1..=n`, id 1 at the rear).
    pub n_vehicles: usize,
    /// True gap between adjacent vehicles, metres (held exactly).
    pub gap_m: f64,
    /// Journey context each vehicle beacons, metres.
    pub context_m: usize,
    /// Metres driven before the first beacon (context build-up).
    pub warmup_m: usize,
    /// Staleness horizon of each vehicle's inbox, seconds.
    pub horizon_s: f64,
    /// Seconds between fuse epochs (beaconing stays at 1 Hz).
    pub fuse_stride_s: usize,
    /// The fault severities to sweep.
    pub cells: Vec<Cell>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            n_vehicles: 6,
            // Short gaps keep several spans inside the shared-context
            // window, so the graph gets the chord redundancy fusion needs;
            // the longest spans stay out of direct reach, which is the
            // coverage story.
            gap_m: 40.0,
            context_m: 250,
            warmup_m: 260,
            horizon_s: 10.0,
            fuse_stride_s: 10,
            cells: default_cells(),
        }
    }
}

/// The default severity ladder: the paper's ideal channel, mild i.i.d.
/// loss, and the ISSUE acceptance cell (30 % expected burst loss plus
/// payload corruption).
pub fn default_cells() -> Vec<Cell> {
    vec![
        Cell {
            label: "ideal channel".into(),
            faults: FaultConfig::ideal(),
        },
        Cell {
            label: "i.i.d. 10% loss".into(),
            faults: FaultConfig::iid_loss(0.10),
        },
        Cell {
            // Stationary bad fraction 0.15/(0.15+0.35) = 0.30 with the
            // loss arriving in bursts, plus duplication, reordering and
            // 1 % payload corruption.
            label: "burst 30% loss + 1% corruption".into(),
            faults: FaultConfig {
                duplicate: 0.05,
                reorder: 0.05,
                corrupt: 0.01,
                jitter_s: 0.02,
                ..FaultConfig::bursty(0.15, 0.35, 1.0)
            },
        },
    ]
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        n_vehicles: 5,
        gap_m: 40.0,
        context_m: 250,
        warmup_m: 260,
        horizon_s: 10.0,
        fuse_stride_s: 10,
        cells: default_cells(),
    }
}

/// Outcome of one severity cell.
struct CellOutcome {
    fuse_epochs: usize,
    /// Mean |error| of the best direct fix, over pairs with a direct fix.
    best_pairwise_mean_m: f64,
    /// Mean |fused − truth| over the same pairs.
    fused_mean_m: f64,
    /// Worst fused error on those pairs.
    fused_worst_m: f64,
    /// Fraction of (epoch × pair) slots with a direct fix.
    direct_coverage: f64,
    /// Fraction of (epoch × pair) slots the fused solution answers.
    fused_coverage: f64,
    /// `rups_fuse_*` counters accumulated over the cell.
    solves: u64,
    edges_rejected: u64,
}

/// Replays the convoy through one faulty link and fuses each epoch.
fn run_cell(p: &Params, faults: &FaultConfig, link_seed: u64) -> CellOutcome {
    let s = &p.scale;
    let mut cfg = s.rups_config();
    cfg.max_context_m = p.context_m + 150;
    let field_seed = s.seed ^ 0xF05E;
    let field = |metre: f64, ch: usize| testfield::rssi(field_seed, metre, ch);
    let quality_cfg = QualityConfig::default();

    let n = p.n_vehicles;
    let ids: Vec<u64> = (1..=n as u64).collect();
    let mut nodes: Vec<RupsNode> = ids
        .iter()
        .map(|&id| RupsNode::new(cfg.clone()).with_vehicle_id(id))
        .collect();
    let link = V2vLink::with_faults(*faults, link_seed);
    let endpoints: Vec<_> = ids.iter().map(|&id| link.join(id)).collect();
    let mut inboxes: Vec<SnapshotInbox> = ids
        .iter()
        .map(|_| SnapshotInbox::new(InboxConfig::for_rups(&cfg, p.horizon_s)))
        .collect();

    let registry = Arc::new(Registry::new());
    let fuser = Fuser::new(FuseConfig {
        anchor: Some(1),
        ..FuseConfig::default()
    })
    .with_observability(Arc::clone(&registry));

    // Truth: vehicle k sits (k−1)·gap ahead of vehicle 1, all at 1 m/s.
    let truth = |a: u64, b: u64| (b as f64 - a as f64) * p.gap_m;
    let n_pairs = n * (n - 1) / 2;

    let mut fuse_epochs = 0usize;
    let mut best_errs = Vec::new();
    let mut fused_errs = Vec::new();
    let mut fused_worst: f64 = 0.0;
    let mut direct_slots = 0usize;
    let mut fused_slots = 0usize;
    let mut pair_slots = 0usize;

    let total_m = p.warmup_m + s.duration_s as usize;
    for metre in 0..total_m {
        let t = metre as f64;
        for (k, node) in nodes.iter_mut().enumerate() {
            let road_m = t + k as f64 * p.gap_m;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| Some(field(road_m, ch))),
            )
            .expect("synthetic drive never mismatches");
        }
        if metre < p.warmup_m {
            continue;
        }

        // Everyone beacons (1 Hz) and drains their endpoint.
        for (k, node) in nodes.iter_mut().enumerate() {
            let snap = node.snapshot(Some(p.context_m));
            if let Ok(wire) = try_encode_snapshot(&snap) {
                endpoints[k].broadcast(t, wire);
            }
        }
        for (k, ep) in endpoints.iter().enumerate() {
            for delivery in ep.poll_until(t) {
                if let Ok(snap) = decode_snapshot(&delivery.payload) {
                    let _ = inboxes[k].accept(snap, t);
                }
            }
        }

        if !(metre - p.warmup_m).is_multiple_of(p.fuse_stride_s) {
            continue;
        }
        fuse_epochs += 1;

        // Each vehicle grades fixes against every snapshot it holds; the
        // epoch's graded fixes become the fix graph.
        let mut graph = FixGraph::new();
        for &id in &ids {
            graph.insert_node(id);
        }
        // Direct fixes per unordered pair, keyed (lo, hi).
        let mut direct: Vec<Vec<(u64, u64, GradedFix)>> = vec![Vec::new(); n_pairs];
        let pair_slot = |a: u64, b: u64| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (i, j) = (lo as usize - 1, hi as usize - 1);
            // Row-major upper triangle of an n×n table.
            i * n - i * (i + 1) / 2 + (j - i - 1)
        };
        for (k, node) in nodes.iter_mut().enumerate() {
            let observer = ids[k];
            for (id, graded) in node.fix_inbox_parallel(&inboxes[k], t, &quality_cfg) {
                let Some(neighbour) = id else { continue };
                if neighbour == observer || !ids.contains(&neighbour) {
                    continue;
                }
                if let Ok(graded) = graded {
                    graph.insert_fix(observer, neighbour, &graded);
                    direct[pair_slot(observer, neighbour)].push((observer, neighbour, graded));
                }
            }
        }

        let solution = fuser.solve(&graph).ok();
        for a in 1..=n as u64 {
            for b in (a + 1)..=n as u64 {
                pair_slots += 1;
                let fused = solution.as_ref().and_then(|sol| sol.displacement(a, b));
                if let Some(d) = fused {
                    fused_slots += 1;
                    let err = (d - truth(a, b)).abs();
                    // Only pairs with a direct competitor enter the error
                    // comparison; fused-only pairs are the coverage story.
                    if !direct[pair_slot(a, b)].is_empty() {
                        fused_errs.push(err);
                        fused_worst = fused_worst.max(err);
                    }
                }
                let best = direct[pair_slot(a, b)]
                    .iter()
                    .max_by(|x, y| weight_for(&x.2.report).total_cmp(&weight_for(&y.2.report)));
                if let Some((observer, neighbour, graded)) = best {
                    direct_slots += 1;
                    let err = (graded.fix.distance_m - truth(*observer, *neighbour)).abs();
                    best_errs.push(err);
                }
            }
        }
    }

    let snap = registry.snapshot();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    CellOutcome {
        fuse_epochs,
        best_pairwise_mean_m: mean(&best_errs),
        fused_mean_m: mean(&fused_errs),
        fused_worst_m: fused_worst,
        direct_coverage: direct_slots as f64 / pair_slots.max(1) as f64,
        fused_coverage: fused_slots as f64 / pair_slots.max(1) as f64,
        solves: snap.counter("rups_fuse_solves").unwrap_or(0),
        edges_rejected: snap.counter("rups_fuse_edges_rejected").unwrap_or(0),
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let mut x = Vec::new();
    let mut fused_y = Vec::new();
    let mut best_y = Vec::new();
    let mut fused_cov_y = Vec::new();
    let mut direct_cov_y = Vec::new();
    let mut notes = Vec::new();
    for (i, cell) in p.cells.iter().enumerate() {
        let out = run_cell(p, &cell.faults, p.scale.seed ^ 0xF0_5E ^ (i as u64 * 131));
        x.push(cell.faults.expected_loss());
        fused_y.push(out.fused_mean_m);
        best_y.push(out.best_pairwise_mean_m);
        fused_cov_y.push(out.fused_coverage);
        direct_cov_y.push(out.direct_coverage);
        notes.push(format!(
            "{}: fused mean |err| {:.2} m (worst {:.2} m) vs best pairwise {:.2} m \
             over {} fuse epochs; coverage fused {:.2} vs direct {:.2}; \
             {} solves, {} edges rejected",
            cell.label,
            out.fused_mean_m,
            out.fused_worst_m,
            out.best_pairwise_mean_m,
            out.fuse_epochs,
            out.fused_coverage,
            out.direct_coverage,
            out.solves,
            out.edges_rejected,
        ));
    }
    notes.push(format!(
        "{} vehicles, {:.0} m gaps; fused positions answer every connected pair, \
         including spans whose shared context is too short for any direct fix",
        p.n_vehicles, p.gap_m
    ));
    Figure {
        id: "ext-fusion".into(),
        title: "Fix-graph fusion vs best pairwise fix under channel faults".into(),
        notes,
        series: vec![
            Series::new(
                "fused mean |error| (m) vs expected loss",
                x.clone(),
                fused_y,
            ),
            Series::new(
                "best pairwise mean |error| (m) vs expected loss",
                x.clone(),
                best_y,
            ),
            Series::new(
                "fused pair coverage vs expected loss",
                x.clone(),
                fused_cov_y,
            ),
            Series::new("direct pair coverage vs expected loss", x, direct_cov_y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_beats_best_pairwise_under_burst_loss() {
        let p = quick_params();
        let fig = run(&p);
        let fused = &fig.series[0];
        let best = &fig.series[1];
        let fused_cov = &fig.series[2];
        let direct_cov = &fig.series[3];
        assert_eq!(fused.x.len(), p.cells.len());

        // The acceptance cell: ≥30 % expected burst loss + corruption.
        let accept = p
            .cells
            .iter()
            .position(|c| c.faults.expected_loss() >= 0.30 && c.faults.corrupt >= 0.01)
            .expect("default cells include the acceptance severity");
        assert!(
            fused.y[accept] < best.y[accept],
            "fused {} must beat best pairwise {}",
            fused.y[accept],
            best.y[accept]
        );
        // Fusion answers at least every pair a direct fix answers.
        for i in 0..p.cells.len() {
            assert!(
                fused_cov.y[i] >= direct_cov.y[i] - 1e-9,
                "cell {i}: fused coverage {} below direct {}",
                fused_cov.y[i],
                direct_cov.y[i]
            );
            assert!(fused.y[i] > 0.0 && fused.y[i] < 10.0, "cell {i} error sane");
        }
        // The ideal channel fuses (nearly) every pair.
        assert!(fused_cov.y[0] > 0.9, "ideal coverage {}", fused_cov.y[0]);
    }
}

//! Fig. 11: average RDE and SYN-point error under dynamic environments and
//! radio configurations (§VI-C).
//!
//! A grid of environments (2-lane suburb, 4-lane urban, 8-lane urban same
//! lane, 8-lane urban distinct lanes) × radio configurations (1 front /
//! 1 front, 4 front / 4 front, 4 central / 4 front), each cell reporting
//! the mean error with a 95 % confidence interval, using the selective
//! average over five SYN points. Paper anchors: best accuracy with the
//! most, front-placed radios; errors below ≈4.5 m on average across road
//! settings; ≈10 m when the cars drive in different lanes.

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times};
use crate::series::{render_table, Figure, SampleStats, Series};
use crate::tracegen::{generate, TraceConfig};
use gsm_sim::RadioPlacement;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the Fig. 11 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
    }
}

/// The environment rows of the figure: (label, road, same lane?).
pub const ENVIRONMENTS: [(&str, RoadClass, bool); 4] = [
    ("2-lane, suburb", RoadClass::Suburban2Lane, true),
    ("4-lane, same lane", RoadClass::Urban4Lane, true),
    ("8-lane, same lane", RoadClass::Urban8Lane, true),
    ("8-lane, distinct lanes", RoadClass::Urban8Lane, false),
];

/// The radio configuration columns: (label, follower radios, follower
/// placement).
pub const CONFIGS: [(&str, usize, RadioPlacement); 3] = [
    ("1 front, 1 front", 1, RadioPlacement::FrontPanel),
    ("4 front, 4 front", 4, RadioPlacement::FrontPanel),
    ("4 central, 4 front", 4, RadioPlacement::Central),
];

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Mean and CI of the relative-distance error.
    pub rde: Option<SampleStats>,
    /// Mean and CI of the SYN-point error.
    pub syn: Option<SampleStats>,
}

/// Computes one grid cell.
pub fn run_cell(
    scale: &EvalScale,
    road: RoadClass,
    same_lane: bool,
    radios: usize,
    follower_placement: RadioPlacement,
) -> Cell {
    let cfg = scale.rups_config();
    let mut rde = Vec::new();
    let mut syn = Vec::new();
    for seed in scale.trace_seeds(0xF11) {
        let trace = generate(&TraceConfig {
            n_channels: scale.n_channels,
            scanned_channels: scale.scanned_channels,
            route_len_m: scale.route_len_m(),
            duration_s: scale.duration_s,
            leader_radios: radios,
            follower_radios: radios,
            follower_placement,
            leader_lane: 0,
            follower_lane: if same_lane {
                0
            } else {
                road.lanes().saturating_sub(1)
            },
            ..TraceConfig::new(seed, road)
        });
        let times = sample_query_times(&trace, scale.queries_per_seed(), scale.seed ^ 0xB11);
        let outcomes = run_queries(&trace, &cfg, &times);
        rde.extend(outcomes.iter().filter_map(|o| o.rde_m));
        syn.extend(outcomes.iter().flat_map(|o| o.syn_errors_m.clone()));
    }
    Cell {
        rde: SampleStats::of(&rde),
        syn: SampleStats::of(&syn),
    }
}

/// Runs the full grid.
pub fn run(p: &Params) -> Figure {
    let mut rows = Vec::new();
    let mut series: Vec<Series> = CONFIGS
        .iter()
        .map(|(label, _, _)| Series::new(format!("mean RDE (m), {label}"), vec![], vec![]))
        .collect();

    for (env_idx, (env_label, road, same_lane)) in ENVIRONMENTS.iter().enumerate() {
        for (cfg_idx, (cfg_label, radios, placement)) in CONFIGS.iter().enumerate() {
            let cell = run_cell(&p.scale, *road, *same_lane, *radios, *placement);
            let fmt = |s: Option<SampleStats>| match s {
                Some(st) => format!("{:.1} ± {:.1}", st.mean, st.ci95),
                None => "—".into(),
            };
            rows.push(vec![
                env_label.to_string(),
                cfg_label.to_string(),
                fmt(cell.rde),
                fmt(cell.syn),
            ]);
            if let Some(st) = cell.rde {
                series[cfg_idx].x.push(env_idx as f64);
                series[cfg_idx].y.push(st.mean);
            }
        }
    }

    let table = render_table(
        &[
            "environment",
            "radios",
            "RDE mean±CI (m)",
            "SYN mean±CI (m)",
        ],
        &rows,
    );
    let mut notes: Vec<String> = table.lines().map(str::to_owned).collect();
    notes.push(
        "paper: ≤4.5 m mean with 4 front radios over all same-lane settings; \
         ≈10 m on distinct lanes"
            .into(),
    );
    Figure {
        id: "fig11".into(),
        title: "Average RDE under dynamic environments and radio configurations".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_produces_stats() {
        let p = quick_params();
        let cell = run_cell(
            &p.scale,
            RoadClass::Urban4Lane,
            true,
            4,
            RadioPlacement::FrontPanel,
        );
        let rde = cell.rde.expect("some fixes at quick scale");
        assert!(rde.mean < 20.0, "mean RDE {}", rde.mean);
        assert!(rde.ci95 >= 0.0);
        let syn = cell.syn.expect("SYN points found");
        assert!(syn.mean < 25.0, "mean SYN error {}", syn.mean);
    }

    #[test]
    fn distinct_lanes_are_harder_than_same_lane() {
        let p = quick_params();
        let same = run_cell(
            &p.scale,
            RoadClass::Urban8Lane,
            true,
            4,
            RadioPlacement::FrontPanel,
        );
        let diff = run_cell(
            &p.scale,
            RoadClass::Urban8Lane,
            false,
            4,
            RadioPlacement::FrontPanel,
        );
        if let (Some(s), Some(d)) = (same.syn, diff.syn) {
            assert!(
                d.mean >= s.mean - 2.0,
                "distinct lanes ({:.1}) should not beat same lane ({:.1}) by much",
                d.mean,
                s.mean
            );
        }
    }
}

//! Extension experiment: query scalability under heavy traffic (§V-B, and
//! the abstract's claim that RUPS "scales well in the presence of heavy
//! traffic and frequent queries").
//!
//! An `n`-vehicle convoy; the rear vehicle fixes the distance to **every**
//! neighbour at each query instant. We measure the wall-clock cost of the
//! full neighbour sweep as the convoy grows and check that every resolved
//! gap stays correct — the cost should grow linearly in the neighbour count
//! (each neighbour is one independent SYN search) with no accuracy loss.

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use crate::tracegen::{generate_convoy, ConvoyTrace, TraceConfig};
use rups_core::resolve;
use rups_core::syn;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the scalability experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
    /// Convoy sizes to evaluate.
    pub convoy_sizes: Vec<usize>,
    /// Query instants per convoy size.
    pub n_instants: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            convoy_sizes: vec![2, 4, 8],
            n_instants: 10,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        convoy_sizes: vec![2, 4],
        n_instants: 3,
    }
}

struct SweepOutcome {
    per_sweep_ms: f64,
    n_answered: usize,
    n_queries: usize,
    worst_err_m: f64,
}

/// Runs the rear vehicle's all-neighbour sweep at `n_instants` times.
fn sweep(
    trace: &ConvoyTrace,
    cfg: &rups_core::config::RupsConfig,
    n_instants: usize,
) -> SweepOutcome {
    let n = trace.vehicles.len();
    let rear = n - 1;
    let t0 = trace.config.duration_s * 0.5;
    let t1 = trace.config.duration_s - 5.0;
    let mut per_sweep = Vec::new();
    let mut answered = 0usize;
    let mut queries = 0usize;
    let mut worst: f64 = 0.0;
    for i in 0..n_instants {
        let t = t0 + (t1 - t0) * i as f64 / n_instants.max(1) as f64;
        let Some((ours, _)) =
            trace.vehicles[rear].context_at(t, cfg.max_context_m, true, Some(rear as u64))
        else {
            continue;
        };
        let snapshots: Vec<_> = (0..rear)
            .filter_map(|k| {
                trace.vehicles[k].context_at(t, cfg.max_context_m, true, Some(k as u64))
            })
            .collect();
        let started = std::time::Instant::now();
        for (k, (snap, _)) in snapshots.iter().enumerate() {
            queries += 1;
            if let Ok(points) = syn::find_syn_points(&ours.gsm, &snap.gsm, cfg) {
                if let Ok((d, _)) = resolve::aggregate_distance(
                    &points,
                    ours.gsm.len(),
                    snap.gsm.len(),
                    cfg.aggregation,
                ) {
                    answered += 1;
                    let truth = trace.truth_gap_between(k, rear, t);
                    worst = worst.max((d - truth).abs());
                }
            }
        }
        per_sweep.push(started.elapsed().as_secs_f64() * 1e3);
    }
    SweepOutcome {
        per_sweep_ms: per_sweep.iter().sum::<f64>() / per_sweep.len().max(1) as f64,
        n_answered: answered,
        n_queries: queries,
        worst_err_m: worst,
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let s = &p.scale;
    let cfg = s.rups_config();
    let mut x = Vec::new();
    let mut time_y = Vec::new();
    let mut rate_y = Vec::new();
    let mut notes = Vec::new();
    for &n in &p.convoy_sizes {
        let trace = generate_convoy(
            &TraceConfig {
                n_channels: s.n_channels,
                scanned_channels: s.scanned_channels,
                route_len_m: s.route_len_m(),
                duration_s: s.duration_s,
                initial_gap_m: 30.0,
                ..TraceConfig::new(s.seed ^ 0x5CA7, RoadClass::Urban8Lane)
            },
            n,
        );
        let out = sweep(&trace, &cfg, p.n_instants);
        x.push((n - 1) as f64);
        time_y.push(out.per_sweep_ms);
        let rate = out.n_answered as f64 / out.n_queries.max(1) as f64;
        rate_y.push(rate);
        notes.push(format!(
            "{} neighbours: {:.0} ms per sweep ({:.0} ms/neighbour), answer rate {rate:.2}, \
             worst |error| {:.1} m",
            n - 1,
            out.per_sweep_ms,
            out.per_sweep_ms / (n - 1) as f64,
            out.worst_err_m
        ));
    }
    if let (Some(&first), Some(&last)) = (time_y.first(), time_y.last()) {
        let n_ratio = x.last().unwrap() / x[0];
        notes.push(format!(
            "sweep cost grew {:.1}× for {n_ratio:.1}× neighbours — linear, as §V-B argues",
            last / first.max(1e-9)
        ));
    }
    Figure {
        id: "ext-scalability".into(),
        title: "Query cost vs neighbour count (heavy traffic, §V-B)".into(),
        notes,
        series: vec![
            Series::new(
                "ms per all-neighbour sweep vs neighbours",
                x.clone(),
                time_y,
            ),
            Series::new("answer rate vs neighbours", x, rate_y),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_scale_linearly_and_stay_correct() {
        let fig = run(&quick_params());
        let time = &fig.series[0];
        let rates = &fig.series[1];
        assert_eq!(time.x, vec![1.0, 3.0]);
        // 3 neighbours should cost no more than ~5× one neighbour (linear
        // plus noise on a busy machine).
        assert!(
            time.y[1] < time.y[0] * 5.0 + 50.0,
            "superlinear sweep cost: {:?}",
            time.y
        );
        // Most neighbour queries succeed at quick scale.
        assert!(rates.y.iter().all(|&r| r > 0.4), "rates {:?}", rates.y);
        // Worst-case error stays bounded (notes carry it).
        for n in &fig.notes {
            if let Some(part) = n.split("worst |error| ").nth(1) {
                let v: f64 = part.trim_end_matches(" m").parse().unwrap();
                assert!(v < 30.0, "worst error {v}");
            }
        }
    }
}

//! Extension experiment: detection and false-positive rates vs window
//! length (§V-C).
//!
//! The paper claims that with the flexible window and adaptive threshold,
//! "even when the window length is as short as ten meters, RUPS can still
//! guarantee to identify related vehicles with acceptable false positive
//! ratio" — but shows no numbers. This experiment measures both rates: for
//! each window length, `n_pairs` *related* context pairs (same road, known
//! offset) and `n_pairs` *unrelated* pairs (different roads) run the
//! double-sliding check; we report P(SYN found | related) and
//! P(SYN found | unrelated).

use crate::figures::fig01::sample_trajectory;
use crate::series::{Figure, Series};
use gsm_sim::{EnvironmentClass, GsmEnvironment};
use rups_core::config::RupsConfig;
use rups_core::syn::find_best_syn;
use serde::{Deserialize, Serialize};

/// Parameters of the false-positive experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Master seed.
    pub seed: u64,
    /// Window lengths to evaluate, metres.
    pub window_lens_m: Vec<usize>,
    /// Context length, metres (long enough for every window).
    pub context_len_m: usize,
    /// Related/unrelated pairs per window length.
    pub n_pairs: usize,
    /// Band width.
    pub n_channels: usize,
    /// True offset within related pairs, metres.
    pub offset_m: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            seed: 0xF9,
            window_lens_m: vec![10, 20, 40, 60, 85],
            context_len_m: 300,
            n_pairs: 60,
            n_channels: 96,
            offset_m: 35,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        n_pairs: 12,
        n_channels: 48,
        window_lens_m: vec![10, 40, 85],
        ..Default::default()
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let mut detect = Vec::with_capacity(p.window_lens_m.len());
    let mut fpr = Vec::with_capacity(p.window_lens_m.len());
    let mut offset_err = Vec::with_capacity(p.window_lens_m.len());

    for &w in &p.window_lens_m {
        let cfg = RupsConfig {
            n_channels: p.n_channels,
            window_len_m: w,
            window_channels: 45.min(p.n_channels),
            max_context_m: p.context_len_m,
            min_window_len_m: 10.min(w),
            ..RupsConfig::default()
        };
        let mut hits = 0usize;
        let mut false_hits = 0usize;
        let mut err_sum = 0.0f64;
        for pair in 0..p.n_pairs {
            let seed = p.seed ^ ((w as u64) << 24) ^ (pair as u64);
            // Related: same environment, second trajectory offset and
            // half an hour later.
            let env = GsmEnvironment::new(seed, EnvironmentClass::SemiOpen, 2_000.0, p.n_channels);
            let a = sample_trajectory(&env, p.context_len_m, 0.0);
            let b = {
                // Offset entry, 1800 s later (temporal drift applies).
                let mut traj =
                    rups_core::gsm::GsmTrajectory::with_capacity(p.n_channels, p.context_len_m);
                for i in 0..p.context_len_m {
                    let pos = (100.0 + (p.offset_m + i) as f64, 0.0);
                    let pv = env.power_vector_dbm(pos, 1800.0 + i as f64, 0.0);
                    traj.push(&rups_core::gsm::PowerVector::from_values(pv));
                }
                traj
            };
            if let Ok(syn) = find_best_syn(&a, &b, &cfg) {
                hits += 1;
                let implied = syn.other_end as i64 - syn.self_end as i64;
                err_sum += (implied as f64 + p.offset_m as f64).abs();
            }
            // Unrelated: a completely different road.
            let env2 = GsmEnvironment::new(
                seed ^ 0xDEAD_0000,
                EnvironmentClass::SemiOpen,
                2_000.0,
                p.n_channels,
            );
            let c = sample_trajectory(&env2, p.context_len_m, 0.0);
            if find_best_syn(&a, &c, &cfg).is_ok() {
                false_hits += 1;
            }
        }
        detect.push(hits as f64 / p.n_pairs as f64);
        fpr.push(false_hits as f64 / p.n_pairs as f64);
        offset_err.push(if hits > 0 {
            err_sum / hits as f64
        } else {
            f64::NAN
        });
    }

    let x: Vec<f64> = p.window_lens_m.iter().map(|&w| w as f64).collect();
    let notes = vec![
        format!(
            "detection rate at w = {} m: {:.2}; at w = {} m: {:.2}",
            p.window_lens_m[0],
            detect[0],
            p.window_lens_m.last().unwrap(),
            detect.last().unwrap()
        ),
        format!(
            "false-positive rate at w = {} m: {:.2}; at w = {} m: {:.2}",
            p.window_lens_m[0],
            fpr[0],
            p.window_lens_m.last().unwrap(),
            fpr.last().unwrap()
        ),
        "paper §V-C: short windows + relaxed threshold keep related vehicles \
         detectable at an acceptable false-positive ratio"
            .into(),
    ];
    Figure {
        id: "ext-fpr".into(),
        title: "Detection vs false-positive rate as the checking window shrinks (§V-C)".into(),
        notes,
        series: vec![
            Series::new("P(SYN | related)", x.clone(), detect),
            Series::new("P(SYN | unrelated)", x.clone(), fpr),
            Series::new("mean |offset error| of detections (m)", x, offset_err),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_windows_detect_related_and_reject_unrelated() {
        let fig = run(&quick_params());
        let detect = &fig.series[0];
        let fpr = &fig.series[1];
        // At the full 85 m window, detection is high and false positives
        // are rare.
        let last = detect.y.len() - 1;
        assert!(
            detect.y[last] > 0.8,
            "detection at 85 m: {}",
            detect.y[last]
        );
        assert!(fpr.y[last] < 0.25, "FPR at 85 m: {}", fpr.y[last]);
        // Shrinking the window may cost accuracy but detection must not
        // collapse (the §V-C claim).
        assert!(detect.y[0] > 0.5, "detection at 10 m: {}", detect.y[0]);
        // False positives rise (or stay flat) as the window shrinks.
        assert!(fpr.y[0] >= fpr.y[last] - 0.05);
    }
}

//! Fig. 9: SYN-point distance errors with varying numbers and positions of
//! GSM radios (§VI-B).
//!
//! Four configurations — 1, 2 and 4 front-panel radios per vehicle, plus
//! one car with 4 *central* radios — each produce a CDF of the ground-truth
//! error of every SYN point found. The paper's reading: more radios ⇒ fewer
//! missing channels ⇒ better SYN points, and placement matters (central
//! radios are visibly worse).

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times};
use crate::series::{Figure, Series};
use crate::tracegen::{generate, TraceConfig};
use gsm_sim::RadioPlacement;
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the Fig. 9 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (queries per config, band width, duration).
    pub scale: EvalScale,
    /// Road setting of the experiment.
    pub road: RoadClass,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            road: RoadClass::Urban4Lane,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        road: RoadClass::Urban4Lane,
    }
}

/// The four radio configurations of §VI-B:
/// (label, follower radios, follower placement, leader radios, leader placement).
pub const CONFIGS: [(&str, usize, RadioPlacement, usize, RadioPlacement); 4] = [
    (
        "4 front radios, 4 front radios",
        4,
        RadioPlacement::FrontPanel,
        4,
        RadioPlacement::FrontPanel,
    ),
    (
        "4 central radios, 4 front radios",
        4,
        RadioPlacement::Central,
        4,
        RadioPlacement::FrontPanel,
    ),
    (
        "2 front radios, 2 front radios",
        2,
        RadioPlacement::FrontPanel,
        2,
        RadioPlacement::FrontPanel,
    ),
    (
        "1 front radio, 1 front radio",
        1,
        RadioPlacement::FrontPanel,
        1,
        RadioPlacement::FrontPanel,
    ),
];

/// Collects the SYN-error samples for one radio configuration.
pub fn syn_errors_for_config(
    p: &Params,
    follower_radios: usize,
    follower_placement: RadioPlacement,
    leader_radios: usize,
    leader_placement: RadioPlacement,
) -> Vec<f64> {
    let s = &p.scale;
    let rups_cfg = s.rups_config();
    let mut errs = Vec::new();
    for seed in s.trace_seeds(0xF09) {
        let trace = generate(&TraceConfig {
            n_channels: s.n_channels,
            scanned_channels: s.scanned_channels,
            route_len_m: s.route_len_m(),
            duration_s: s.duration_s,
            follower_radios,
            follower_placement,
            leader_radios,
            leader_placement,
            ..TraceConfig::new(seed, p.road)
        });
        let times = sample_query_times(&trace, s.queries_per_seed(), s.seed ^ 0x919);
        errs.extend(
            run_queries(&trace, &rups_cfg, &times)
                .into_iter()
                .flat_map(|o| o.syn_errors_m),
        );
    }
    errs
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (label, fr, fp, lr, lp) in CONFIGS {
        let errs = syn_errors_for_config(p, fr, fp, lr, lp);
        let cdf = Series::cdf(label, errs);
        if !cdf.x.is_empty() {
            notes.push(format!(
                "{label}: {} SYN points, {:.0}% below 10 m, median {:.1} m",
                cdf.x.len(),
                100.0 * cdf.cdf_at(10.0),
                cdf.percentile(50.0),
            ));
        } else {
            notes.push(format!("{label}: no SYN points found"));
        }
        series.push(cdf);
    }
    notes.push(
        "paper: more radios reduce SYN error; central placement clearly worse \
         (~75% under 10 m vs higher for front)"
            .into(),
    );
    Figure {
        id: "fig9".into(),
        title: "SYN point distance errors vs number and position of GSM radios".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_count_and_placement_order_the_cdfs() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 4);
        let frac10 = |i: usize| fig.series[i].cdf_at(10.0);
        // 4 front radios beat 1 front radio at the 10 m mark.
        assert!(
            frac10(0) >= frac10(3),
            "4 radios ({}) should beat 1 radio ({})",
            frac10(0),
            frac10(3)
        );
        // Central placement does not beat front placement.
        assert!(
            frac10(0) >= frac10(1) - 0.1,
            "front ({}) vs central ({})",
            frac10(0),
            frac10(1)
        );
        // Everyone finds at least some SYN points at quick scale.
        for s in &fig.series {
            assert!(!s.x.is_empty(), "{} found nothing", s.label);
        }
    }
}

//! Extension experiment: fleet-wide distributed tracing and metrics
//! aggregation over a 6-vehicle convoy at the fault acceptance cell.
//!
//! Extends [`ext_observability`] (one shared registry, one vehicle pair)
//! to the production-shaped layout: every vehicle of the convoy owns a
//! *private* [`Registry`] and [`SpanRecorder`], beacons a **traced**
//! snapshot ([`RupsNode::traced_snapshot`]) through one shared faulted
//! [`V2vLink`], and runs the hardened receive path plus per-epoch fusion
//! on the anchor vehicle. The harness then does what a fleet backend
//! would do:
//!
//! * **Merged tracing** — per-node span rings are aligned onto one
//!   timebase through [`ClockModel`]s recovered by a [`SkewEstimator`]
//!   (one `clock.sync` fencepost per fuse epoch, paired against the
//!   anchor ring) and exported as one multi-process Chrome trace
//!   (`pid` = vehicle id, `pid` 0 = the wire). Because beacons carry a
//!   [`TraceContext`], one causal trace crosses
//!   the sender's `v2v.beacon` span, the wire's `link.*` fault events,
//!   and every receiver's `inbox.validate` / `engine.query` spans down
//!   to the anchor's `fuse.solve`.
//! * **Fleet aggregation** — per-window [`FleetAggregator`] merges the N
//!   registries (counters sum, histograms bucket-merge, gauges average),
//!   ranks worst nodes (p99, rejection rate, per-node fix-error gauge),
//!   feeds the window deltas to the PR 4 trigger rules via
//!   [`check_fleet_rules`], and renders a Prometheus exposition.
//! * **SLOs** — the declarative [`default_slos`] set is evaluated from
//!   the fleet timeline alone ([`evaluate_slos`]); the verdict ships in
//!   the artefact.
//!
//! Two committed artefacts:
//! `results/ext-fleet-observability-trace.json` (the merged Chrome
//! trace, loadable in Perfetto) and
//! `results/ext-fleet-observability-fleet.json` (windows, worst-node
//! rankings, clock models, SLO verdict, trace-crossing summary).
//!
//! [`ext_observability`]: crate::figures::ext_observability
//! [`Registry`]: rups_obs::Registry
//! [`SpanRecorder`]: rups_obs::SpanRecorder
//! [`RupsNode::traced_snapshot`]: rups_core::pipeline::RupsNode::traced_snapshot
//! [`V2vLink`]: v2v_sim::link::V2vLink
//! [`ClockModel`]: rups_obs::ClockModel
//! [`SkewEstimator`]: rups_obs::SkewEstimator
//! [`FleetAggregator`]: rups_obs::FleetAggregator
//! [`check_fleet_rules`]: rups_obs::check_fleet_rules
//! [`default_slos`]: rups_obs::default_slos
//! [`evaluate_slos`]: rups_obs::evaluate_slos

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_core::geo::GeoSample;
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::RupsNode;
use rups_core::quality::QualityConfig;
use rups_core::report::default_flight_config;
use rups_core::testfield;
use rups_fuse::{FixGraph, FuseConfig, Fuser};
use rups_obs::{
    check_fleet_rules, default_slos, evaluate_slos, merged_chrome_trace, write_chrome_trace,
    ChromeTrace, ClockModel, FleetAggregator, FleetSnapshot, MetricsSnapshot, NodeTrace, Registry,
    SkewEstimator, SloSpec, SloVerdict, SpanRecorder, TraceContext, TriggerEvent, TRACE_ARG,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use v2v_sim::codec::{try_encode_snapshot, CodecMetrics};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

/// Parameters of the fleet-observability run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (duration, band width, master seed).
    pub scale: EvalScale,
    /// Convoy size (ids `1..=n`, id 1 is the fusion anchor).
    pub n_vehicles: usize,
    /// True gap between adjacent vehicles, metres (held exactly).
    pub gap_m: f64,
    /// Journey context each vehicle beacons, metres.
    pub context_m: usize,
    /// Metres driven before the first beacon (context build-up).
    pub warmup_m: usize,
    /// Staleness horizon of each vehicle's inbox, seconds.
    pub horizon_s: f64,
    /// Seconds between fix/fuse epochs (beaconing stays at 1 Hz).
    pub fuse_stride_s: usize,
    /// Seconds per fleet-aggregation window.
    pub window_stride_s: usize,
    /// Channel impairments (default: the acceptance cell, ~30 % expected
    /// burst loss plus duplication, reordering and 1 % corruption).
    pub faults: FaultConfig,
    /// Capacity of each vehicle's span ring.
    pub span_capacity: usize,
    /// p99 ceiling of the `fix_p99_latency` SLO, nanoseconds (generous by
    /// default so debug smoke runs judge health, not build optimisation).
    pub slo_p99_max_ns: f64,
    /// Where to write the merged Chrome trace; `None` skips it.
    pub trace_out_path: Option<String>,
    /// Where to write the fleet artefact JSON; `None` skips it.
    pub fleet_out_path: Option<String>,
}

/// Default home of the merged Chrome trace, resolved against the
/// workspace so the artefact lands in `results/` regardless of the
/// invocation directory.
pub fn default_trace_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-fleet-observability-trace.json"
    )
    .to_string()
}

/// Default home of the fleet artefact.
pub fn default_fleet_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-fleet-observability-fleet.json"
    )
    .to_string()
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            n_vehicles: 6,
            gap_m: 40.0,
            context_m: 250,
            warmup_m: 260,
            horizon_s: 10.0,
            fuse_stride_s: 10,
            window_stride_s: 60,
            faults: super::ext_observability::default_faults(),
            span_capacity: 8192,
            slo_p99_max_ns: 500e6,
            trace_out_path: Some(default_trace_path()),
            fleet_out_path: Some(default_fleet_path()),
        }
    }
}

/// Smaller run for tests and `--quick` smoke passes.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        window_stride_s: 30,
        ..Params::default()
    }
}

/// One fleet-aggregation window of the artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWindow {
    /// Simulated time at the end of this window, seconds.
    pub t_s: f64,
    /// Fleet-merged metrics recorded during this window only, slimmed via
    /// [`MetricsSnapshot::compact`].
    pub delta: MetricsSnapshot,
    /// PR 4 trigger rules that fired on this window's fleet delta.
    pub triggers: Vec<TriggerEvent>,
}

/// One vehicle's recovered clock, relative to the anchor's timebase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeClock {
    /// Vehicle id (0 = the wire's span ring).
    pub node: u64,
    /// Recovered phase error, nanoseconds.
    pub offset_ns: f64,
    /// Recovered rate error, parts per million.
    pub drift_ppm: f64,
    /// `clock.sync` fenceposts the estimate rests on.
    pub sync_points: usize,
}

/// How far the best causal trace travelled through the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Distinct trace ids tagged anywhere in the merged trace.
    pub traces_tagged: usize,
    /// The trace id crossing the most vehicles among those that reached
    /// fusion (0 when none did).
    pub best_trace_id: i64,
    /// Distinct vehicle pids (wire excluded) the best trace appears on.
    pub vehicles_crossed: usize,
    /// Span/event names the best trace appears under, sorted.
    pub stages: Vec<String>,
    /// Whether the best trace was also stamped on a `link.*` fault event.
    pub crossed_the_wire: bool,
}

/// The machine-readable fleet artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetArtifact {
    /// Always `"ext-fleet-observability"`.
    pub figure_id: String,
    /// Convoy size.
    pub n_vehicles: usize,
    /// The channel impairments the run was recorded under.
    pub faults: FaultConfig,
    /// Seconds per aggregation window.
    pub window_stride_s: usize,
    /// Per-window fleet deltas plus fired trigger rules, oldest first.
    pub windows: Vec<FleetWindow>,
    /// The end-of-run fleet snapshot: merged metrics plus worst-node
    /// rankings.
    pub fleet: FleetSnapshot,
    /// Prometheus exposition of the final fleet snapshot.
    pub prometheus: String,
    /// Recovered per-node clock models (node 0 = the wire ring).
    pub clocks: Vec<NodeClock>,
    /// The SLO spec set the run was judged against.
    pub slo_specs: Vec<SloSpec>,
    /// The verdict, from telemetry alone.
    pub slo: SloVerdict,
    /// The causal-trace crossing summary of the merged Chrome trace.
    pub trace_summary: TraceSummary,
}

/// The `trace` arg of a merged event, when present.
fn trace_of(event: &rups_obs::ChromeTraceEvent) -> Option<i64> {
    match &event.args {
        serde::value::Value::Map(entries) => entries
            .iter()
            .find(|(k, _)| k == TRACE_ARG)
            .and_then(|(_, v)| v.as_i64()),
        _ => None,
    }
}

/// Summarises how far each causal trace travelled and picks the best:
/// among traces that reached `fuse.solve` with the full beacon →
/// validate → query chain, the one crossing the most vehicles (wire
/// crossings break ties).
fn summarise_traces(merged: &ChromeTrace) -> TraceSummary {
    struct Info {
        pids: BTreeSet<u64>,
        names: BTreeSet<String>,
    }
    let mut traces: BTreeMap<i64, Info> = BTreeMap::new();
    for event in merged.span_events() {
        let Some(trace) = trace_of(event) else {
            continue;
        };
        let info = traces.entry(trace).or_insert_with(|| Info {
            pids: BTreeSet::new(),
            names: BTreeSet::new(),
        });
        info.pids.insert(event.pid);
        info.names.insert(event.name.clone());
    }
    let vehicles = |info: &Info| info.pids.iter().filter(|&&p| p != 0).count();
    let best = traces
        .iter()
        .filter(|(_, info)| {
            ["fuse.solve", "v2v.beacon", "inbox.validate", "engine.query"]
                .iter()
                .all(|n| info.names.contains(*n))
        })
        .max_by_key(|(_, info)| {
            let wire = info.names.iter().any(|n| n.starts_with("link."));
            (vehicles(info), wire)
        });
    match best {
        Some((&id, info)) => TraceSummary {
            traces_tagged: traces.len(),
            best_trace_id: id,
            vehicles_crossed: vehicles(info),
            stages: info.names.iter().cloned().collect(),
            crossed_the_wire: info.names.iter().any(|n| n.starts_with("link.")),
        },
        None => TraceSummary {
            traces_tagged: traces.len(),
            best_trace_id: 0,
            vehicles_crossed: 0,
            stages: Vec::new(),
            crossed_the_wire: false,
        },
    }
}

/// Recovers each ring's clock against the anchor ring by pairing the
/// newest common `clock.sync` fenceposts.
fn estimate_clock(node_syncs: &[u64], anchor_syncs: &[u64]) -> (ClockModel, usize) {
    let k = node_syncs.len().min(anchor_syncs.len());
    let mut est = SkewEstimator::new();
    for i in 0..k {
        let local = node_syncs[node_syncs.len() - k + i] as f64;
        let fleet = anchor_syncs[anchor_syncs.len() - k + i] as f64;
        est.observe(local, fleet);
    }
    (est.estimate(), k)
}

/// The counter-derived ratio `num / den`; 0 when `den` is 0.
fn ratio(snap: &MetricsSnapshot, num: &[&str], den: &[&str]) -> f64 {
    let sum = |names: &[&str]| -> u64 {
        names
            .iter()
            .map(|n| snap.counter(n).unwrap_or(0))
            .sum::<u64>()
    };
    let d = sum(den);
    if d == 0 {
        0.0
    } else {
        sum(num) as f64 / d as f64
    }
}

/// Runs the experiment, writing both artefacts when paths are set.
pub fn run(p: &Params) -> Figure {
    let s = &p.scale;
    let mut cfg = s.rups_config();
    cfg.max_context_m = p.context_m + 150;
    let field_seed = s.seed ^ 0xF1EE7;
    let field = |metre: f64, ch: usize| testfield::rssi(field_seed, metre, ch);
    let quality_cfg = QualityConfig::default();

    let n = p.n_vehicles;
    let ids: Vec<u64> = (1..=n as u64).collect();
    let registries: Vec<Arc<Registry>> = ids.iter().map(|_| Arc::new(Registry::new())).collect();
    let rings: Vec<Arc<SpanRecorder>> = ids
        .iter()
        .map(|_| Arc::new(SpanRecorder::new(p.span_capacity)))
        .collect();
    let mut nodes: Vec<RupsNode> = ids
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            RupsNode::new(cfg.clone())
                .with_vehicle_id(id)
                .with_observability(Arc::clone(&registries[k]))
                .with_span_recorder(Arc::clone(&rings[k]))
        })
        .collect();
    // The wire gets its own ring: fault events become pid 0 of the merged
    // trace, tagged with the trace of the beacon they damaged.
    let wire_spans = Arc::new(SpanRecorder::new(p.span_capacity));
    // Link counters land in the anchor's registry (the sim's one wire has
    // no node of its own to meter it).
    let link = V2vLink::with_faults_in(p.faults, s.seed ^ 0xF1EE7, Arc::clone(&registries[0]))
        .with_spans(Arc::clone(&wire_spans));
    let endpoints: Vec<_> = ids.iter().map(|&id| link.join(id)).collect();
    let mut inboxes: Vec<SnapshotInbox> = ids
        .iter()
        .enumerate()
        .map(|(k, _)| {
            SnapshotInbox::new(InboxConfig::for_rups(&cfg, p.horizon_s))
                .with_registry(&registries[k])
                .with_spans(Arc::clone(&rings[k]))
        })
        .collect();
    let codecs: Vec<CodecMetrics> = registries
        .iter()
        .map(|r| CodecMetrics::register(r))
        .collect();
    // The anchor vehicle runs the fuser; its solves land in its own
    // registry and span ring.
    let fuser = Fuser::new(FuseConfig {
        anchor: Some(ids[0]),
        ..FuseConfig::default()
    })
    .with_observability(Arc::clone(&registries[0]))
    .with_spans(Arc::clone(&rings[0]));

    let truth = |a: u64, b: u64| (b as f64 - a as f64) * p.gap_m;
    let aggregator = FleetAggregator::new();
    let fleet_rules = default_flight_config().rules;
    let mut windows: Vec<FleetWindow> = Vec::new();
    let mut prev_merged: Option<FleetSnapshot> = None;
    let mut last_anchor_ctx: Option<TraceContext> = None;
    // Per-vehicle running |fix error| stats feeding the worst-node gauge.
    let mut err_sum = vec![0.0f64; n];
    let mut err_n = vec![0u64; n];

    let snapshot_fleet = |aggregator: &FleetAggregator| -> FleetSnapshot {
        let parts: Vec<(u64, MetricsSnapshot)> = ids
            .iter()
            .zip(registries.iter())
            .map(|(&id, reg)| (id, reg.snapshot()))
            .collect();
        aggregator
            .aggregate(&parts)
            .expect("uncompacted per-node snapshots always bucket-merge")
    };

    let total_m = p.warmup_m + s.duration_s as usize;
    for metre in 0..total_m {
        let t = metre as f64;
        for (k, node) in nodes.iter_mut().enumerate() {
            let road_m = t + k as f64 * p.gap_m;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| Some(field(road_m, ch))),
            )
            .expect("synthetic drive never mismatches");
        }
        if metre < p.warmup_m {
            continue;
        }

        // Everyone beacons a traced snapshot (1 Hz) and drains its inbox.
        for (k, node) in nodes.iter_mut().enumerate() {
            let (snap, ctx) = node.traced_snapshot(Some(p.context_m), metre as u32);
            let ctx = ctx.expect("convoy vehicles carry ids");
            {
                let mut g = rings[k].span("v2v.beacon");
                g.set_args(ctx.args());
            }
            if let Ok(bytes) = try_encode_snapshot(&snap) {
                endpoints[k].broadcast_traced(t, bytes, ctx);
            }
        }
        for (k, ep) in endpoints.iter().enumerate() {
            for delivery in ep.poll_until(t) {
                if let Ok(snap) = codecs[k].decode(&delivery.payload) {
                    let ctx = snap.trace;
                    let accepted = inboxes[k].accept(snap, delivery.arrival_s);
                    // The anchor tags its next solve with the freshest
                    // beacon it accepted, closing the causal chain.
                    if k == 0 && accepted == Ok(true) && ctx.is_some() {
                        last_anchor_ctx = ctx;
                    }
                }
            }
        }

        let epoch_m = metre - p.warmup_m;
        if epoch_m.is_multiple_of(p.fuse_stride_s) {
            // One `clock.sync` fencepost per ring per epoch: the pairs
            // against the anchor ring recover each clock's offset/drift.
            for ring in rings.iter() {
                ring.event("clock.sync");
            }
            wire_spans.event("clock.sync");

            let mut graph = FixGraph::new();
            for &id in &ids {
                graph.insert_node(id);
            }
            for (k, node) in nodes.iter_mut().enumerate() {
                let observer = ids[k];
                for (id, graded) in node.fix_inbox_parallel(&inboxes[k], t, &quality_cfg) {
                    let Some(neighbour) = id else { continue };
                    if neighbour == observer || !ids.contains(&neighbour) {
                        continue;
                    }
                    if let Ok(graded) = graded {
                        err_sum[k] += (graded.fix.distance_m - truth(observer, neighbour)).abs();
                        err_n[k] += 1;
                        graph.insert_fix(observer, neighbour, &graded);
                    }
                }
                if err_n[k] > 0 {
                    registries[k]
                        .gauge("rups_node_fix_error_m")
                        .set(err_sum[k] / err_n[k] as f64);
                }
            }
            let _ = fuser.solve_traced(&graph, last_anchor_ctx);
        }

        if epoch_m > 0 && epoch_m.is_multiple_of(p.window_stride_s) {
            let fleet = snapshot_fleet(&aggregator);
            let delta = match &prev_merged {
                Some(prev) => fleet.delta(prev),
                None => fleet.merged.clone(),
            };
            windows.push(FleetWindow {
                t_s: t,
                triggers: check_fleet_rules(&fleet_rules, t, &delta),
                delta: delta.compact(),
            });
            prev_merged = Some(fleet);
        }
    }

    // Final fleet snapshot, trailing window, SLO verdict.
    let fleet = snapshot_fleet(&aggregator);
    let tail_delta = match &prev_merged {
        Some(prev) => fleet.delta(prev),
        None => fleet.merged.clone(),
    };
    if tail_delta.counters.iter().any(|c| c.value > 0) {
        windows.push(FleetWindow {
            t_s: (total_m - 1) as f64,
            triggers: check_fleet_rules(&fleet_rules, (total_m - 1) as f64, &tail_delta),
            delta: tail_delta.compact(),
        });
    }
    let slo_specs = default_slos(p.slo_p99_max_ns);
    let window_deltas: Vec<MetricsSnapshot> = windows.iter().map(|w| w.delta.clone()).collect();
    let slo = evaluate_slos(&slo_specs, &fleet.merged, &window_deltas);

    // Align every ring onto the anchor's timebase and merge.
    let sync_ts = |ring: &SpanRecorder| -> Vec<u64> {
        ring.recent()
            .iter()
            .filter(|r| r.name == "clock.sync")
            .map(|r| r.start_ns)
            .collect()
    };
    let anchor_syncs = sync_ts(&rings[0]);
    let mut clocks = Vec::new();
    let mut node_traces = Vec::new();
    for (k, &id) in ids.iter().enumerate() {
        let (model, sync_points) = if k == 0 {
            (ClockModel::IDENTITY, anchor_syncs.len())
        } else {
            estimate_clock(&sync_ts(&rings[k]), &anchor_syncs)
        };
        clocks.push(NodeClock {
            node: id,
            offset_ns: model.offset_ns,
            drift_ppm: model.drift_ppm,
            sync_points,
        });
        node_traces.push(
            NodeTrace::new(id, format!("vehicle-{id}"), rings[k].recent()).with_clock(model),
        );
    }
    let (wire_model, wire_points) = estimate_clock(&sync_ts(&wire_spans), &anchor_syncs);
    clocks.push(NodeClock {
        node: 0,
        offset_ns: wire_model.offset_ns,
        drift_ppm: wire_model.drift_ppm,
        sync_points: wire_points,
    });
    node_traces.push(NodeTrace::new(0, "wire", wire_spans.recent()).with_clock(wire_model));
    let merged = merged_chrome_trace(&node_traces);
    let trace_summary = summarise_traces(&merged);

    let artifact = FleetArtifact {
        figure_id: "ext-fleet-observability".into(),
        n_vehicles: n,
        faults: p.faults,
        window_stride_s: p.window_stride_s,
        windows,
        prometheus: fleet.to_prometheus(),
        fleet,
        clocks,
        slo_specs,
        slo,
        trace_summary,
    };

    let mut notes = Vec::new();
    if let Some(path) = &p.trace_out_path {
        write_chrome_trace(path, &merged);
        notes.push(format!(
            "merged chrome trace ({} events, {} processes) written to {path}",
            merged.traceEvents.len(),
            n + 1
        ));
    }
    if let Some(path) = &p.fleet_out_path {
        write_fleet_artifact(path, &artifact);
        notes.push(format!("fleet artefact written to {path}"));
    }

    let ts = &artifact.trace_summary;
    notes.push(format!(
        "best causal trace {:#x} crossed {} of {} vehicles ({}the wire): {}",
        ts.best_trace_id,
        ts.vehicles_crossed,
        n,
        if ts.crossed_the_wire { "and " } else { "not " },
        ts.stages.join(" → "),
    ));
    let max_abs_offset = artifact
        .clocks
        .iter()
        .map(|c| c.offset_ns.abs())
        .fold(0.0f64, f64::max);
    notes.push(format!(
        "{} traces tagged; clocks recovered from {} sync points/ring, worst |offset| {:.1} µs",
        ts.traces_tagged,
        artifact.clocks[0].sync_points,
        max_abs_offset / 1_000.0,
    ));
    for w in &artifact.fleet.worst {
        if let Some(worst) = w.ranked.first() {
            notes.push(format!(
                "worst node by {}: vehicle {} at {:.3}",
                w.criterion, worst.node_id, worst.value
            ));
        }
    }
    let fired: usize = artifact.windows.iter().map(|w| w.triggers.len()).sum();
    notes.push(format!(
        "{} fleet windows, {} trigger firings",
        artifact.windows.len(),
        fired
    ));
    for r in &artifact.slo.reports {
        notes.push(format!(
            "slo {}: {} (observed {:.4} vs {:.4}, {} events{})",
            r.name,
            if r.pass { "pass" } else { "FAIL" },
            r.observed,
            r.threshold,
            r.events,
            if r.armed { "" } else { "; never armed" },
        ));
    }

    // Figure view: fleet health per aggregation window.
    let x: Vec<f64> = artifact.windows.iter().map(|w| w.t_s).collect();
    let series_of = |label: &str, f: &dyn Fn(&MetricsSnapshot) -> f64| {
        Series::new(
            label,
            x.clone(),
            artifact.windows.iter().map(|w| f(&w.delta)).collect(),
        )
    };
    let series = vec![
        series_of("fleet link delivery rate per window", &|d| {
            ratio(
                d,
                &["rups_v2v_link_delivered"],
                &["rups_v2v_link_offered"],
            )
        }),
        series_of("fleet snapshots accepted per window", &|d| {
            d.counter("rups_core_inbox_accepted").unwrap_or(0) as f64
        }),
        series_of("fleet engine query p99 per window (µs)", &|d| {
            d.histogram("rups_core_engine_query_ns")
                .map_or(0.0, |h| h.p99 / 1_000.0)
        }),
        series_of("fleet fix availability per window", &|d| {
            ratio(
                d,
                &[
                    "rups_core_quality_grade_high",
                    "rups_core_quality_grade_medium",
                    "rups_core_quality_grade_low",
                ],
                &[
                    "rups_core_quality_grade_high",
                    "rups_core_quality_grade_medium",
                    "rups_core_quality_grade_low",
                    "rups_core_quality_rejected",
                ],
            )
        }),
    ];

    Figure {
        id: "ext-fleet-observability".into(),
        title: "Fleet-wide tracing, aggregation and SLOs over a faulted convoy".into(),
        notes,
        series,
    }
}

/// Serialises the fleet artefact to `path`, creating parent directories.
fn write_fleet_artifact(path: &str, artifact: &FleetArtifact) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create fleet output dir");
    }
    let json = serde_json::to_string_pretty(artifact).expect("serialize fleet artifact");
    std::fs::write(p, json).expect("write fleet artifact");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_causal_trace_crosses_the_convoy_and_slos_hold() {
        let mut p = quick_params();
        let dir = std::env::temp_dir();
        let trace_path = dir.join("rups-ext-fleet-obs-test-trace.json");
        let fleet_path = dir.join("rups-ext-fleet-obs-test-fleet.json");
        p.trace_out_path = Some(trace_path.to_string_lossy().into_owned());
        p.fleet_out_path = Some(fleet_path.to_string_lossy().into_owned());
        let fig = run(&p);

        // Both artefacts parse back into their typed forms.
        let raw = std::fs::read_to_string(&trace_path).expect("trace written");
        std::fs::remove_file(&trace_path).ok();
        let merged: ChromeTrace = serde_json::from_str(&raw).expect("trace parses");
        let raw = std::fs::read_to_string(&fleet_path).expect("fleet artefact written");
        std::fs::remove_file(&fleet_path).ok();
        let art: FleetArtifact = serde_json::from_str(&raw).expect("fleet artefact parses");
        assert_eq!(art.figure_id, "ext-fleet-observability");

        // The merged trace is multi-process: all vehicles plus the wire
        // named, spans present.
        let process_names: std::collections::BTreeSet<u64> = merged
            .traceEvents
            .iter()
            .filter(|e| e.ph == "M" && e.name == "process_name")
            .map(|e| e.pid)
            .collect();
        assert_eq!(process_names.len(), p.n_vehicles + 1);
        assert!(merged.traceEvents.iter().any(|e| e.ph == "X"));

        // The acceptance claim: one causal trace crosses ≥3 vehicles and
        // every pipeline stage, beacon → wire → validation → query →
        // fusion.
        let ts = &art.trace_summary;
        assert!(
            ts.vehicles_crossed >= 3,
            "best trace crossed only {} vehicles",
            ts.vehicles_crossed
        );
        for stage in ["v2v.beacon", "inbox.validate", "engine.query", "fuse.solve"] {
            assert!(ts.stages.iter().any(|s| s == stage), "missing {stage}");
        }
        assert!(ts.crossed_the_wire, "no link.* event tagged on {ts:?}");
        assert!(ts.traces_tagged > 10);

        // Recomputing the summary from the committed trace agrees with
        // the artefact (CI asserts from the files alone).
        assert_eq!(&summarise_traces(&merged), ts);

        // Fleet aggregation is live: counters from all six vehicles,
        // worst-node rankings populated, prometheus exposition rendered.
        assert_eq!(art.fleet.nodes.len(), p.n_vehicles);
        assert!(art.fleet.merged.counter("rups_core_inbox_accepted").unwrap() > 0);
        assert!(art.fleet.merged.counter("rups_v2v_link_dropped").unwrap() > 0);
        assert!(art
            .fleet
            .worst
            .iter()
            .any(|w| w.criterion == "rups_node_fix_error_m" && !w.ranked.is_empty()));
        assert!(art.prometheus.contains(&format!(
            "rups_fleet_nodes {}",
            p.n_vehicles
        )));
        assert!(!art.windows.is_empty());

        // Clocks were recovered for every ring from the sync fenceposts.
        assert_eq!(art.clocks.len(), p.n_vehicles + 1);
        assert!(art.clocks.iter().all(|c| c.sync_points >= 2));

        // The SLO verdict holds at the acceptance fault cell, judged from
        // telemetry alone.
        assert_eq!(art.slo.reports.len(), art.slo_specs.len());
        assert!(art.slo.pass, "SLO breach: {:?}", art.slo.reports);
        assert!(art.slo.reports.iter().any(|r| r.armed));

        // The figure view mirrors the windows.
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.series[0].x.len(), art.windows.len());
    }
}

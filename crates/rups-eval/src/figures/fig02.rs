//! Fig. 2: temporary stability of GSM power vectors (§III-B).
//!
//! Twenty static locations; at each, pairs of power vectors separated by a
//! growing time gap are correlated (Eq. (1)). The figure plots the
//! probability that a pair is "stable" (correlation above a threshold) as a
//! function of the gap, for the full band and for random 10-channel
//! subsets, at thresholds 0.8 and 0.9.

use crate::series::{Figure, Series};
use gsm_sim::{EnvironmentClass, GsmEnvironment};
use rand::rngs::StdRng;
use rand::{seq::index::sample, Rng, SeedableRng};
use rups_core::stats::pearson;
use serde::{Deserialize, Serialize};

/// Parameters of the Fig. 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Master seed.
    pub seed: u64,
    /// Number of measurement locations (paper: 20, downtown).
    pub n_locations: usize,
    /// Power-vector pairs per (location, gap) cell (paper: 100 per gap over
    /// all locations).
    pub pairs_per_gap: usize,
    /// Band width (paper: 194).
    pub n_channels: usize,
    /// Time gaps to evaluate, seconds (paper: 5 s to 25 min).
    pub gaps_s: Vec<f64>,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            seed: 2,
            n_locations: 20,
            pairs_per_gap: 100,
            n_channels: 194,
            gaps_s: vec![5.0, 30.0, 60.0, 120.0, 300.0, 600.0, 900.0, 1200.0, 1500.0],
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        n_locations: 5,
        pairs_per_gap: 30,
        n_channels: 64,
        gaps_s: vec![5.0, 120.0, 600.0, 1500.0],
        ..Default::default()
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    // Downtown setting per the paper: semi-open urban environment.
    let env = GsmEnvironment::new(p.seed, EnvironmentClass::SemiOpen, 8_000.0, p.n_channels);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xF162);

    let locations: Vec<(f64, f64)> = (0..p.n_locations)
        .map(|_| (rng.gen_range(200.0..7_800.0), 0.0))
        .collect();

    // (threshold, subset size) variants of the figure.
    let variants: [(f64, Option<usize>, &str); 4] = [
        (0.8, None, "Correlation ≥ 0.80, 194 channels"),
        (0.9, None, "Correlation ≥ 0.90, 194 channels"),
        (0.8, Some(10), "Correlation ≥ 0.80, 10 channels"),
        (0.9, Some(10), "Correlation ≥ 0.90, 10 channels"),
    ];

    let mut series = Vec::new();
    for (threshold, subset, label) in variants {
        let mut probs = Vec::with_capacity(p.gaps_s.len());
        for &gap in &p.gaps_s {
            let mut stable = 0usize;
            let mut total = 0usize;
            for _ in 0..p.pairs_per_gap {
                let loc = locations[rng.gen_range(0..locations.len())];
                let t1 = rng.gen_range(0.0..1800.0);
                let a = env.power_vector_dbm(loc, t1, 0.0);
                let b = env.power_vector_dbm(loc, t1 + gap, 0.0);
                let (a, b): (Vec<f32>, Vec<f32>) = match subset {
                    Some(k) => {
                        let idx = sample(&mut rng, p.n_channels, k.min(p.n_channels));
                        (
                            idx.iter().map(|i| a[i]).collect(),
                            idx.iter().map(|i| b[i]).collect(),
                        )
                    }
                    None => (a, b),
                };
                if let Some(r) = pearson(&a, &b) {
                    total += 1;
                    if r >= threshold {
                        stable += 1;
                    }
                }
            }
            probs.push(if total > 0 {
                stable as f64 / total as f64
            } else {
                0.0
            });
        }
        let x: Vec<f64> = p.gaps_s.iter().map(|g| g / 60.0).collect();
        series.push(Series::new(label, x, probs));
    }

    let p08_full_last = *series[0].y.last().unwrap();
    let p09_full_last = *series[1].y.last().unwrap();
    Figure {
        id: "fig2".into(),
        title: "Temporary stability of GSM power vectors".into(),
        notes: vec![
            format!(
                "P(corr ≥ 0.8, full band) at the longest gap: {p08_full_last:.2} \
                 (paper: ≥ 0.95 with threshold 0.8)"
            ),
            format!("P(corr ≥ 0.9, full band) at the longest gap: {p09_full_last:.2}"),
            "x axis: time difference in minutes".into(),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_anchors_hold() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 4);
        // Threshold 0.8 on the full band: high stability across all gaps —
        // the Fig. 2 anchor.
        for (&gap_min, &prob) in fig.series[0].x.iter().zip(&fig.series[0].y) {
            assert!(prob >= 0.85, "P(r≥0.8) = {prob} at {gap_min} min");
        }
        // Stricter threshold can only lower the probability.
        for (p08, p09) in fig.series[0].y.iter().zip(&fig.series[1].y) {
            assert!(*p09 <= p08 + 1e-9);
        }
        // Short gaps at least as stable as the longest gap (within noise).
        let first = fig.series[1].y.first().unwrap();
        let last = fig.series[1].y.last().unwrap();
        assert!(
            first >= &(last - 0.15),
            "stability should not rise with gap"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&quick_params());
        let b = run(&quick_params());
        assert_eq!(a, b);
    }
}

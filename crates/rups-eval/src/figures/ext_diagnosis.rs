//! Extension experiment: online anomaly detection and automated
//! diagnosis over a convoy with three staged degradations.
//!
//! Extends [`ext_fleet_observability`] from *passive* telemetry (windows,
//! SLO verdicts after the fact) to the *active* layer: a
//! [`DetectorBank`] watches the fleet-merged per-window deltas as they
//! close and raises typed [`Alarm`]s online, and every alarm is handed to
//! [`diagnose`], which correlates the per-node window deltas and span
//! rings to localise the fault to a `(vehicle, pipeline stage)` pair.
//!
//! Three degradations are injected at known aggregation windows, each
//! exercising a different detector binding and a different pipeline
//! stage:
//!
//! | fault            | injection                                   | detector                    | stage  |
//! |------------------|---------------------------------------------|-----------------------------|--------|
//! | burst-loss spike | receiver-targeted blackout on one vehicle   | `link_delivery_rate`        | link   |
//! | clock jump       | one vehicle stamps its beacons seconds off  | `validation_rejection_rate` | beacon |
//! | kernel slowdown  | one vehicle's engine histogram inflates     | `fix_p99_latency`           | engine |
//!
//! The acceptance claims, asserted by the in-module test and re-checked
//! by CI from the committed artefact
//! (`results/ext-diagnosis-report.json`):
//!
//! * zero alarms on the clean warmup segment before the first onset;
//! * every fault detected within ≤ 3 aggregation windows of its onset;
//! * every alarm localised to the correct vehicle *and* stage.
//!
//! Diagnosis baselines are *certified* windows: a window's per-node
//! deltas become the healthy reference only after the bank has stayed
//! quiet for the full detection horizon (3 windows), so a fault's own
//! onset window can never be adopted as "healthy" while its detector is
//! still accumulating.
//!
//! [`ext_fleet_observability`]: crate::figures::ext_fleet_observability
//! [`DetectorBank`]: rups_obs::DetectorBank
//! [`Alarm`]: rups_obs::Alarm
//! [`diagnose`]: fn@rups_obs::diagnose

use crate::figures::EvalScale;
use crate::series::{Figure, Series};
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::PowerVector;
use rups_core::inbox::{InboxConfig, SnapshotInbox};
use rups_core::pipeline::RupsNode;
use rups_core::quality::QualityConfig;
use rups_core::testfield;
use rups_fuse::{FixGraph, FuseConfig, Fuser};
use rups_obs::{
    default_detectors, diagnose, Alarm, DetectorBank, DetectorSpec, DiagnosisReport,
    FleetAggregator, FleetSnapshot, MetricsSnapshot, NodeWindow, Registry, SpanRecorder, Stage,
    CLOCK_OFFSET_GAUGE,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use v2v_sim::codec::{try_encode_snapshot, CodecMetrics};
use v2v_sim::fault::FaultConfig;
use v2v_sim::link::V2vLink;

/// Windows the detectors are allowed before a fault counts as missed (and
/// the quiet streak a window must survive before it is certified as a
/// healthy diagnosis baseline).
const DETECTION_HORIZON_W: u64 = 3;

/// Parameters of the diagnosis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs (duration, band width, master seed).
    pub scale: EvalScale,
    /// Convoy size (ids `1..=n`, id 1 is the fusion anchor).
    pub n_vehicles: usize,
    /// True gap between adjacent vehicles, metres.
    pub gap_m: f64,
    /// Journey context each vehicle beacons, metres.
    pub context_m: usize,
    /// Metres driven before the first beacon (context build-up).
    pub warmup_m: usize,
    /// Staleness horizon of each vehicle's inbox, seconds.
    pub horizon_s: f64,
    /// Seconds between fix/fuse epochs (beaconing stays at 1 Hz).
    pub fix_stride_s: usize,
    /// Seconds per fleet-aggregation window (= one detector observation).
    pub window_stride_s: usize,
    /// Healthy channel impairments (mild, i.i.d.; the staged faults are
    /// injected on top).
    pub base_faults: FaultConfig,
    /// Capacity of each vehicle's span ring.
    pub span_capacity: usize,
    /// Vehicle whose *receiver* blacks out during the burst-loss fault.
    pub burst_target: u64,
    /// First window of the burst-loss fault.
    pub burst_onset_w: u64,
    /// First window *after* the burst-loss fault.
    pub burst_clear_w: u64,
    /// Vehicle whose clock jumps during the clock fault.
    pub clock_target: u64,
    /// First window of the clock fault.
    pub clock_onset_w: u64,
    /// First window *after* the clock fault.
    pub clock_clear_w: u64,
    /// Seconds the faulty clock falls behind (must exceed `horizon_s` so
    /// receivers reject the beacons as stale).
    pub clock_jump_s: f64,
    /// Vehicle whose engine slows down during the slowdown fault.
    pub engine_target: u64,
    /// First window of the slowdown fault.
    pub engine_onset_w: u64,
    /// First window *after* the slowdown fault.
    pub engine_clear_w: u64,
    /// Simulated slow-query duration, nanoseconds.
    pub engine_spike_ns: u64,
    /// Slow queries injected per fix epoch while the slowdown is active.
    pub engine_spikes_per_epoch: usize,
    /// Where to write the diagnosis artefact JSON; `None` skips it.
    pub out_path: Option<String>,
}

/// Default home of the diagnosis artefact, resolved against the
/// workspace so it lands in `results/` regardless of the invocation
/// directory.
pub fn default_out_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/ext-diagnosis-report.json"
    )
    .to_string()
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
            n_vehicles: 6,
            gap_m: 40.0,
            context_m: 250,
            warmup_m: 260,
            horizon_s: 10.0,
            fix_stride_s: 5,
            window_stride_s: 20,
            base_faults: FaultConfig::iid_loss(0.02),
            span_capacity: 4096,
            burst_target: 3,
            burst_onset_w: 5,
            burst_clear_w: 7,
            clock_target: 4,
            clock_onset_w: 7,
            clock_clear_w: 9,
            clock_jump_s: 45.0,
            engine_target: 2,
            engine_onset_w: 9,
            engine_clear_w: 11,
            engine_spike_ns: 2_000_000_000,
            engine_spikes_per_epoch: 8,
            out_path: Some(default_out_path()),
        }
    }
}

/// Smaller run for tests and `--quick` smoke passes.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
        ..Params::default()
    }
}

/// One staged degradation: what was injected, what the detectors and the
/// diagnoser concluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Human name of the injected fault.
    pub name: String,
    /// The detector binding expected to catch it.
    pub detector: String,
    /// The vehicle the fault was injected on.
    pub expect_node: u64,
    /// The pipeline stage the fault belongs to.
    pub expect_stage: Stage,
    /// First faulted window.
    pub onset_window: u64,
    /// First window after the fault cleared.
    pub clear_window: u64,
    /// Window the expected detector first fired in, when it did.
    pub detected_window: Option<u64>,
    /// `detected_window - onset_window`, when detected.
    pub detection_latency_windows: Option<u64>,
    /// The vehicle [`diagnose`](fn@rups_obs::diagnose) blamed, when detected.
    pub localised_node: Option<u64>,
    /// The stage [`diagnose`](fn@rups_obs::diagnose) blamed, when detected.
    pub localised_stage: Option<Stage>,
    /// Detected within the horizon *and* blamed on the right
    /// `(vehicle, stage)` pair.
    pub localised_correctly: bool,
}

/// One closed aggregation window of the artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Simulated time at the end of this window, seconds.
    pub t_s: f64,
    /// Alarms the bank raised on this window.
    pub alarms: u64,
    /// Fleet-merged metrics recorded during this window only.
    pub delta: MetricsSnapshot,
}

/// The machine-readable diagnosis artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisArtifact {
    /// Always `"ext-diagnosis"`.
    pub figure_id: String,
    /// Convoy size.
    pub n_vehicles: usize,
    /// Seconds per aggregation window.
    pub window_stride_s: usize,
    /// The healthy channel impairments under the staged faults.
    pub base_faults: FaultConfig,
    /// Full aggregation windows the detector bank observed.
    pub windows_observed: u64,
    /// First faulted window of the run.
    pub first_onset_window: u64,
    /// Alarms raised before the first onset (the clean-warmup claim:
    /// must be zero).
    pub false_alarms_before_onset: u64,
    /// Every staged degradation and its verdicts.
    pub faults: Vec<FaultOutcome>,
    /// Every alarm the bank raised, in firing order.
    pub alarms: Vec<Alarm>,
    /// One localisation report per alarm, same order.
    pub reports: Vec<DiagnosisReport>,
    /// All three faults detected in time and localised correctly.
    pub all_localised: bool,
    /// Per-window timeline (fleet deltas slimmed via
    /// [`MetricsSnapshot::compact`]).
    pub timeline: Vec<WindowRow>,
}

/// The counter-derived ratio `num / den`; 0 when `den` is 0.
fn ratio(snap: &MetricsSnapshot, num: &[&str], den: &[&str]) -> f64 {
    let sum = |names: &[&str]| -> u64 {
        names
            .iter()
            .map(|n| snap.counter(n).unwrap_or(0))
            .sum::<u64>()
    };
    let d = sum(den);
    if d == 0 {
        0.0
    } else {
        sum(num) as f64 / d as f64
    }
}

/// The detector bindings of this run: the default RUPS set plus a link
/// delivery-rate binding (a receiver-side blackout starves one inbox
/// without raising any *rejection*, so only the wire's own delivered /
/// offered ratio sees it at fleet level).
fn detectors() -> Vec<DetectorSpec> {
    let mut specs = default_detectors();
    // Debug builds run the engine one to two orders of magnitude slower
    // and jitter whole histogram buckets between windows; a wider
    // deviation floor keeps scheduler noise from scoring as a level
    // shift while a 2 s injected spike still scores ≫ threshold.
    for spec in specs.iter_mut() {
        if spec.name == "fix_p99_latency" {
            spec.min_deviation = 2e7;
        }
    }
    specs.push(DetectorSpec::counter_ratio_down(
        "link_delivery_rate",
        &["rups_v2v_link_delivered"],
        &["rups_v2v_link_offered"],
    ));
    specs
}

/// Runs the experiment, writing the artefact when a path is set.
pub fn run(p: &Params) -> Figure {
    let s = &p.scale;
    let mut cfg = s.rups_config();
    cfg.max_context_m = p.context_m + 150;
    let field_seed = s.seed ^ 0xD1A6;
    let field = |metre: f64, ch: usize| testfield::rssi(field_seed, metre, ch);
    let quality_cfg = QualityConfig::default();

    let n = p.n_vehicles;
    let ids: Vec<u64> = (1..=n as u64).collect();
    let registries: Vec<Arc<Registry>> = ids.iter().map(|_| Arc::new(Registry::new())).collect();
    let rings: Vec<Arc<SpanRecorder>> = ids
        .iter()
        .map(|_| Arc::new(SpanRecorder::new(p.span_capacity)))
        .collect();
    let mut nodes: Vec<RupsNode> = ids
        .iter()
        .enumerate()
        .map(|(k, &id)| {
            RupsNode::new(cfg.clone())
                .with_vehicle_id(id)
                .with_observability(Arc::clone(&registries[k]))
                .with_span_recorder(Arc::clone(&rings[k]))
        })
        .collect();
    let link = V2vLink::with_faults_in(p.base_faults, s.seed ^ 0xD1A6, Arc::clone(&registries[0]));
    let endpoints: Vec<_> = ids.iter().map(|&id| link.join(id)).collect();
    let mut inboxes: Vec<SnapshotInbox> = ids
        .iter()
        .enumerate()
        .map(|(k, _)| {
            SnapshotInbox::new(InboxConfig::for_rups(&cfg, p.horizon_s))
                .with_registry(&registries[k])
                .with_spans(Arc::clone(&rings[k]))
        })
        .collect();
    let codecs: Vec<CodecMetrics> = registries
        .iter()
        .map(|r| CodecMetrics::register(r))
        .collect();
    let fuser = Fuser::new(FuseConfig {
        anchor: Some(ids[0]),
        ..FuseConfig::default()
    })
    .with_observability(Arc::clone(&registries[0]));
    // The anchor's own clock is the fleet timebase by definition.
    registries[0].gauge(CLOCK_OFFSET_GAUGE).set(0.0);

    let aggregator = FleetAggregator::new();
    let mut bank = DetectorBank::new(detectors()).with_registry(&registries[0]);
    let snapshot_fleet = |aggregator: &FleetAggregator| -> FleetSnapshot {
        let parts: Vec<(u64, MetricsSnapshot)> = ids
            .iter()
            .zip(registries.iter())
            .map(|(&id, reg)| (id, reg.snapshot()))
            .collect();
        aggregator
            .aggregate(&parts)
            .expect("uncompacted per-node snapshots always bucket-merge")
    };

    let stride = p.window_stride_s as u64;
    // A fault spanning windows [onset, clear) is active at the metres
    // whose window delta closes inside that range (windows close *after*
    // the metre's traffic, so the boundary metre belongs to the window
    // being emitted, not the next one).
    let active = |epoch_m: u64, onset_w: u64, clear_w: u64| -> bool {
        epoch_m > onset_w * stride && epoch_m <= clear_w * stride
    };
    let blackout = FaultConfig::iid_loss(1.0);
    let mut blackout_on = false;
    let engine_idx = ids
        .iter()
        .position(|&id| id == p.engine_target)
        .expect("engine_target is a convoy vehicle");

    let mut prev_merged: Option<FleetSnapshot> = None;
    let mut node_prev: Vec<MetricsSnapshot> =
        registries.iter().map(|r| r.snapshot()).collect();
    // Per-node window-delta history (last DETECTION_HORIZON_W windows)
    // plus the certified healthy baseline each diagnosis compares against.
    let mut history: Vec<VecDeque<MetricsSnapshot>> = ids.iter().map(|_| VecDeque::new()).collect();
    let mut certified: Vec<Option<MetricsSnapshot>> = ids.iter().map(|_| None).collect();
    let mut window_alarmed: Vec<bool> = Vec::new();
    let mut alarms: Vec<Alarm> = Vec::new();
    let mut reports: Vec<DiagnosisReport> = Vec::new();
    let mut timeline: Vec<WindowRow> = Vec::new();

    let total_m = p.warmup_m + s.duration_s as usize;
    for metre in 0..total_m {
        let t = metre as f64;
        for (k, node) in nodes.iter_mut().enumerate() {
            let road_m = t + k as f64 * p.gap_m;
            node.append_metre(
                GeoSample {
                    heading_rad: 0.0,
                    timestamp_s: t,
                },
                &PowerVector::from_fn(cfg.n_channels, |ch| Some(field(road_m, ch))),
            )
            .expect("synthetic drive never mismatches");
        }
        if metre < p.warmup_m {
            continue;
        }
        let epoch_m = (metre - p.warmup_m) as u64;

        // Fault A: black out one vehicle's receiver, mid-run, via the
        // link's runtime per-receiver override.
        let want_blackout = active(epoch_m, p.burst_onset_w, p.burst_clear_w);
        if want_blackout != blackout_on {
            link.set_receiver_faults(p.burst_target, want_blackout.then_some(blackout))
                .expect("blackout override validates");
            blackout_on = want_blackout;
        }
        let clock_active = active(epoch_m, p.clock_onset_w, p.clock_clear_w);
        let engine_active = active(epoch_m, p.engine_onset_w, p.engine_clear_w);

        // Everyone beacons a traced snapshot (1 Hz) and drains its inbox.
        for (k, node) in nodes.iter_mut().enumerate() {
            let (mut snap, ctx) = node.traced_snapshot(Some(p.context_m), metre as u32);
            let ctx = ctx.expect("convoy vehicles carry ids");
            {
                let mut g = rings[k].span("v2v.beacon");
                g.set_args(ctx.args());
            }
            // Fault B: the faulty vehicle's clock falls behind, so its
            // beacons carry timestamps past the staleness horizon.
            if clock_active && ids[k] == p.clock_target {
                let shifted: Vec<GeoSample> = snap
                    .geo
                    .samples()
                    .iter()
                    .map(|g| GeoSample {
                        heading_rad: g.heading_rad,
                        timestamp_s: g.timestamp_s - p.clock_jump_s,
                    })
                    .collect();
                snap.geo = GeoTrajectory::from_samples(shifted);
            }
            if let Ok(bytes) = try_encode_snapshot(&snap) {
                endpoints[k].broadcast_traced(t, bytes, ctx);
            }
        }
        for (k, ep) in endpoints.iter().enumerate() {
            for delivery in ep.poll_until(t) {
                if let Ok(snap) = codecs[k].decode(&delivery.payload) {
                    // The anchor derives every sender's apparent clock
                    // offset from the beacon's own stamps (what a fleet
                    // backend recovers from sync fenceposts) and writes
                    // it into that node's metrics slot — the beacon-stage
                    // evidence `diagnose` keys on.
                    if k == 0 {
                        if let (Some(sender), Some(newest)) =
                            (snap.vehicle_id, snap.geo.samples().last())
                        {
                            if let Some(idx) = ids.iter().position(|&i| i == sender) {
                                let apparent_ns =
                                    (newest.timestamp_s - delivery.arrival_s) * 1e9;
                                registries[idx].gauge(CLOCK_OFFSET_GAUGE).set(apparent_ns);
                            }
                        }
                    }
                    let _ = inboxes[k].accept(snap, delivery.arrival_s);
                }
            }
        }

        if epoch_m.is_multiple_of(p.fix_stride_s as u64) {
            let mut graph = FixGraph::new();
            for &id in &ids {
                graph.insert_node(id);
            }
            for (k, node) in nodes.iter_mut().enumerate() {
                let observer = ids[k];
                for (id, graded) in node.fix_inbox_parallel(&inboxes[k], t, &quality_cfg) {
                    let Some(neighbour) = id else { continue };
                    if neighbour == observer || !ids.contains(&neighbour) {
                        continue;
                    }
                    if let Ok(graded) = graded {
                        graph.insert_fix(observer, neighbour, &graded);
                    }
                }
            }
            let _ = fuser.solve_traced(&graph, None);
            // Fault C: the target vehicle's kernel slows down — its
            // engine histogram records seconds-long queries.
            if engine_active {
                let h = registries[engine_idx].histogram("rups_core_engine_query_ns");
                for _ in 0..p.engine_spikes_per_epoch {
                    h.record(p.engine_spike_ns);
                }
            }
        }

        if epoch_m > 0 && epoch_m.is_multiple_of(stride) {
            let fleet = snapshot_fleet(&aggregator);
            let fleet_delta = match &prev_merged {
                Some(prev) => fleet.delta(prev),
                None => fleet.merged.clone(),
            };
            prev_merged = Some(fleet);
            let node_delta: Vec<MetricsSnapshot> = registries
                .iter()
                .zip(node_prev.iter_mut())
                .map(|(reg, prev)| {
                    let snap = reg.snapshot();
                    let delta = snap.delta(prev);
                    *prev = snap;
                    delta
                })
                .collect();

            let fired = bank.observe(t, &fleet_delta);
            for alarm in &fired {
                let node_windows: Vec<NodeWindow> = ids
                    .iter()
                    .enumerate()
                    .map(|(k, &id)| NodeWindow {
                        node_id: id,
                        baseline: certified[k]
                            .clone()
                            .or_else(|| history[k].front().cloned())
                            .unwrap_or_else(|| node_delta[k].clone()),
                        firing: node_delta[k].clone(),
                    })
                    .collect();
                let spans: Vec<(u64, Vec<rups_obs::SpanRecord>)> = ids
                    .iter()
                    .enumerate()
                    .map(|(k, &id)| (id, rings[k].recent()))
                    .collect();
                reports.push(
                    diagnose(alarm, &node_windows, &spans)
                        .expect("convoy diagnosis always has nodes"),
                );
            }
            window_alarmed.push(!fired.is_empty());
            timeline.push(WindowRow {
                t_s: t,
                alarms: fired.len() as u64,
                delta: fleet_delta.compact(),
            });
            alarms.extend(fired);

            for (k, delta) in node_delta.into_iter().enumerate() {
                if history[k].len() as u64 == DETECTION_HORIZON_W {
                    history[k].pop_front();
                }
                history[k].push_back(delta);
            }
            // Certify the oldest held window as the healthy baseline only
            // once the bank stayed quiet for the full detection horizon.
            let w = window_alarmed.len();
            if w as u64 >= DETECTION_HORIZON_W
                && window_alarmed[w - 3..].iter().all(|&a| !a)
            {
                for k in 0..n {
                    certified[k] = history[k].front().cloned();
                }
            }
        }
    }

    let first_onset = p
        .burst_onset_w
        .min(p.clock_onset_w)
        .min(p.engine_onset_w);
    let false_alarms_before_onset = alarms
        .iter()
        .filter(|a| a.window_index < first_onset)
        .count() as u64;

    let outcome = |name: &str,
                   detector: &str,
                   node: u64,
                   stage: Stage,
                   onset: u64,
                   clear: u64|
     -> FaultOutcome {
        let hit = alarms.iter().position(|a| {
            a.detector == detector
                && a.window_index >= onset
                && a.window_index <= onset + DETECTION_HORIZON_W
        });
        let report = hit.map(|i| &reports[i]);
        let detected_window = hit.map(|i| alarms[i].window_index);
        let localised_correctly = report
            .is_some_and(|r| r.worst_node == node && r.worst_stage == stage);
        FaultOutcome {
            name: name.to_string(),
            detector: detector.to_string(),
            expect_node: node,
            expect_stage: stage,
            onset_window: onset,
            clear_window: clear,
            detected_window,
            detection_latency_windows: detected_window.map(|w| w - onset),
            localised_node: report.map(|r| r.worst_node),
            localised_stage: report.map(|r| r.worst_stage),
            localised_correctly,
        }
    };
    let faults = vec![
        outcome(
            "burst_loss_spike",
            "link_delivery_rate",
            p.burst_target,
            Stage::Link,
            p.burst_onset_w,
            p.burst_clear_w,
        ),
        outcome(
            "clock_jump",
            "validation_rejection_rate",
            p.clock_target,
            Stage::Beacon,
            p.clock_onset_w,
            p.clock_clear_w,
        ),
        outcome(
            "kernel_slowdown",
            "fix_p99_latency",
            p.engine_target,
            Stage::Engine,
            p.engine_onset_w,
            p.engine_clear_w,
        ),
    ];
    let all_localised = faults.iter().all(|f| f.localised_correctly)
        && false_alarms_before_onset == 0;

    let artifact = DiagnosisArtifact {
        figure_id: "ext-diagnosis".into(),
        n_vehicles: n,
        window_stride_s: p.window_stride_s,
        base_faults: p.base_faults,
        windows_observed: bank.windows_seen(),
        first_onset_window: first_onset,
        false_alarms_before_onset,
        faults,
        alarms,
        reports,
        all_localised,
        timeline,
    };

    let mut notes = Vec::new();
    if let Some(path) = &p.out_path {
        write_artifact(path, &artifact);
        notes.push(format!("diagnosis artefact written to {path}"));
    }
    notes.push(format!(
        "{} fleet windows observed, {} alarms, {} false alarms before window {}",
        artifact.windows_observed,
        artifact.alarms.len(),
        artifact.false_alarms_before_onset,
        artifact.first_onset_window,
    ));
    for f in &artifact.faults {
        notes.push(match f.detected_window {
            Some(w) => format!(
                "{}: {} fired on window {} ({} window(s) after onset {}), localised to \
                 vehicle {:?} / {:?} — {}",
                f.name,
                f.detector,
                w,
                f.detection_latency_windows.unwrap_or(0),
                f.onset_window,
                f.localised_node,
                f.localised_stage,
                if f.localised_correctly { "correct" } else { "WRONG" },
            ),
            None => format!(
                "{}: NOT detected within {} windows of onset {}",
                f.name, DETECTION_HORIZON_W, f.onset_window
            ),
        });
    }

    // Figure view: the three watched readings plus alarms per window.
    let x: Vec<f64> = artifact.timeline.iter().map(|w| w.t_s).collect();
    let series_of = |label: &str, f: &dyn Fn(&MetricsSnapshot) -> f64| {
        Series::new(
            label,
            x.clone(),
            artifact.timeline.iter().map(|w| f(&w.delta)).collect(),
        )
    };
    let series = vec![
        series_of("fleet link delivery rate per window", &|d| {
            ratio(d, &["rups_v2v_link_delivered"], &["rups_v2v_link_offered"])
        }),
        series_of("fleet validation rejection rate per window", &|d| {
            ratio(
                d,
                &[
                    "rups_core_inbox_rejected_malformed",
                    "rups_core_inbox_rejected_channel_mismatch",
                    "rups_core_inbox_rejected_undersized",
                    "rups_core_inbox_rejected_stale",
                ],
                &[
                    "rups_core_inbox_rejected_malformed",
                    "rups_core_inbox_rejected_channel_mismatch",
                    "rups_core_inbox_rejected_undersized",
                    "rups_core_inbox_rejected_stale",
                    "rups_core_inbox_accepted",
                    "rups_core_inbox_ignored_outdated",
                ],
            )
        }),
        series_of("fleet engine query p99 per window (ms)", &|d| {
            d.histogram("rups_core_engine_query_ns")
                .map_or(0.0, |h| h.p99 / 1e6)
        }),
        Series::new(
            "alarms per window",
            x.clone(),
            artifact.timeline.iter().map(|w| w.alarms as f64).collect(),
        ),
    ];

    Figure {
        id: "ext-diagnosis".into(),
        title: "Online detection and automated diagnosis of staged degradations".into(),
        notes,
        series,
    }
}

/// Serialises the diagnosis artefact to `path`, creating parent
/// directories.
fn write_artifact(path: &str, artifact: &DiagnosisArtifact) {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        std::fs::create_dir_all(parent).expect("create diagnosis output dir");
    }
    let json = serde_json::to_string_pretty(artifact).expect("serialize diagnosis artifact");
    std::fs::write(p, json).expect("write diagnosis artifact");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_faults_are_detected_in_time_and_localised_correctly() {
        let mut p = quick_params();
        let out = std::env::temp_dir().join("rups-ext-diagnosis-test.json");
        p.out_path = Some(out.to_string_lossy().into_owned());
        let fig = run(&p);

        let raw = std::fs::read_to_string(&out).expect("artefact written");
        std::fs::remove_file(&out).ok();
        let art: DiagnosisArtifact = serde_json::from_str(&raw).expect("artefact parses");
        assert_eq!(art.figure_id, "ext-diagnosis");

        // The clean warmup segment never false-alarms.
        assert_eq!(
            art.false_alarms_before_onset, 0,
            "false alarms before window {}: {:?}",
            art.first_onset_window, art.alarms
        );

        // Every staged fault: detected within the horizon, blamed on the
        // right vehicle and the right pipeline stage.
        assert_eq!(art.faults.len(), 3);
        for f in &art.faults {
            let w = f
                .detected_window
                .unwrap_or_else(|| panic!("{} not detected: {raw}", f.name));
            assert!(
                w >= f.onset_window
                    && f.detection_latency_windows.unwrap() <= DETECTION_HORIZON_W,
                "{} detected too late: window {w} vs onset {}",
                f.name,
                f.onset_window
            );
            assert_eq!(
                (f.localised_node, f.localised_stage),
                (Some(f.expect_node), Some(f.expect_stage)),
                "{} mislocalised",
                f.name
            );
            assert!(f.localised_correctly);
        }
        assert!(art.all_localised);

        // Each report carries ranked evidence, strongest first.
        assert_eq!(art.reports.len(), art.alarms.len());
        for r in &art.reports {
            assert!(r.worst_score > 0.0);
            assert!(r.scores.windows(2).all(|w| w[0].score >= w[1].score));
        }

        // The figure view mirrors the timeline.
        assert_eq!(fig.series.len(), 4);
        assert_eq!(fig.series[0].x.len(), art.timeline.len());
        assert_eq!(art.windows_observed, art.timeline.len() as u64);
    }
}

//! §V-A: computational cost of the SYN-point search.
//!
//! The paper bounds the search by `O(mwk)` (context length × window length
//! × window width) and measures ≈1.2 ms for a 1000 m context with a
//! 45-channel × 100 m window on an i7-2640M. We time the same kernel on
//! this machine across a small parameter grid and verify the linear
//! scaling in each parameter empirically. (The `rups-bench` crate holds the
//! Criterion version with proper statistics.)

use crate::series::{Figure, Series};
use rups_core::config::RupsConfig;
use rups_core::gsm::{GsmTrajectory, PowerVector};
use rups_core::syn::find_best_syn;
use rups_core::testfield;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of the §V-A cost measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Context lengths `m` to sweep, metres.
    pub context_lens_m: Vec<usize>,
    /// Window length `w`, metres (paper quotes 100 here).
    pub window_len_m: usize,
    /// Window width `k`, channels (paper: 45).
    pub window_channels: usize,
    /// Band width the contexts carry.
    pub n_channels: usize,
    /// Timing repetitions per point.
    pub reps: usize,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            context_lens_m: vec![250, 500, 1000, 2000],
            window_len_m: 100,
            window_channels: 45,
            n_channels: 194,
            reps: 5,
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        context_lens_m: vec![100, 200],
        window_len_m: 40,
        window_channels: 16,
        n_channels: 32,
        reps: 1,
    }
}

/// Builds a synthetic journey context of `len` metres starting at road
/// metre `start`.
pub fn synthetic_context(seed: u64, start: usize, len: usize, n_channels: usize) -> GsmTrajectory {
    let mut t = GsmTrajectory::with_capacity(n_channels, len);
    for i in 0..len {
        let s = (start + i) as f64;
        t.push(&PowerVector::from_fn(n_channels, |ch| {
            Some(testfield::rssi(seed, s, ch))
        }));
    }
    t
}

/// Runs the measurement.
pub fn run(p: &Params) -> Figure {
    let mut x = Vec::new();
    let mut y_ms = Vec::new();
    for &m in &p.context_lens_m {
        let cfg = RupsConfig {
            n_channels: p.n_channels,
            window_len_m: p.window_len_m.min(m / 2).max(10),
            window_channels: p.window_channels,
            max_context_m: m.max(1000),
            ..RupsConfig::default()
        };
        let a = synthetic_context(11, 0, m, p.n_channels);
        let b = synthetic_context(11, m / 3, m, p.n_channels);
        // Warm-up, then time.
        let _ = find_best_syn(&a, &b, &cfg);
        let t0 = Instant::now();
        for _ in 0..p.reps {
            let _ = find_best_syn(&a, &b, &cfg);
        }
        let per_call = t0.elapsed().as_secs_f64() * 1e3 / p.reps as f64;
        x.push(m as f64);
        y_ms.push(per_call);
    }

    let mut notes = vec![format!(
        "double-sliding SYN search, window {} ch × {} m",
        p.window_channels, p.window_len_m
    )];
    if let (Some(&first), Some(&last)) = (y_ms.first(), y_ms.last()) {
        let m_ratio = *p.context_lens_m.last().unwrap() as f64 / p.context_lens_m[0] as f64;
        notes.push(format!(
            "time scales ≈linearly in m: {:.1}× time for {m_ratio:.1}× context",
            last / first.max(1e-9)
        ));
    }
    if let Some(i) = p.context_lens_m.iter().position(|&m| m == 1000) {
        notes.push(format!(
            "1000 m context: {:.2} ms per search (paper: ≈1.2 ms on an i7-2640M)",
            y_ms[i]
        ));
    }
    Figure {
        id: "sec5a".into(),
        title: "Computational cost of seeking a SYN point (O(mwk))".into(),
        notes,
        series: vec![Series::new(
            "search time (ms) vs context length (m)",
            x,
            y_ms,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_context_length() {
        let fig = run(&quick_params());
        let s = &fig.series[0];
        assert_eq!(s.x.len(), 2);
        assert!(s.y.iter().all(|&ms| ms > 0.0));
        // 2× context should take > 1.2× time (linear-ish; ample slack for
        // timer noise in debug builds).
        assert!(s.y[1] > s.y[0] * 1.2, "times {:?}", s.y);
    }

    #[test]
    fn synthetic_context_shape() {
        let c = synthetic_context(1, 50, 80, 16);
        assert_eq!(c.len(), 80);
        assert_eq!(c.n_channels(), 16);
        assert!((c.coverage() - 1.0).abs() < 1e-12);
    }
}

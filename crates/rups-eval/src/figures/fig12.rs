//! Fig. 12: RUPS vs GPS under four urban environments (§VI-D) — the
//! paper's headline result.
//!
//! CDFs of the relative-distance error for both schemes on 2-lane suburb,
//! 4-lane urban, 8-lane urban and under-elevated roads. Paper anchors:
//! RUPS means {3.4, 2.3, 4.2, 6.9} m vs GPS {4.2, 9.9, 9.8, 21.1} m —
//! RUPS roughly flat across environments, GPS collapsing under elevated
//! roads, overall advantage ≈2.7×.

use crate::figures::EvalScale;
use crate::queries::{run_queries, sample_query_times, GpsBaseline};
use crate::series::{render_table, Figure, Series};
use crate::tracegen::{generate, TraceConfig};
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// Parameters of the Fig. 12 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Scale knobs.
    pub scale: EvalScale,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            scale: EvalScale::paper(),
        }
    }
}

/// Smaller run for tests.
pub fn quick_params() -> Params {
    Params {
        scale: EvalScale::quick(),
    }
}

/// Per-road labels in the paper's order.
pub const ROADS: [(&str, RoadClass); 4] = [
    ("2-lane roads, suburb", RoadClass::Suburban2Lane),
    ("4-lane roads, urban", RoadClass::Urban4Lane),
    ("8-lane roads, urban", RoadClass::Urban8Lane),
    ("under elevated roads", RoadClass::UnderElevated),
];

/// The per-road outcome: RUPS and GPS error samples.
pub struct RoadOutcome {
    /// RUPS |error| samples, metres.
    pub rups: Vec<f64>,
    /// GPS |error| samples, metres.
    pub gps: Vec<f64>,
}

/// Runs both schemes on one road setting.
pub fn run_road(scale: &EvalScale, road: RoadClass) -> RoadOutcome {
    let cfg = scale.rups_config();
    let mut rups = Vec::new();
    let mut gps = Vec::new();
    for seed in scale.trace_seeds(0xF12) {
        let trace = generate(&TraceConfig {
            n_channels: scale.n_channels,
            scanned_channels: scale.scanned_channels,
            route_len_m: scale.route_len_m(),
            duration_s: scale.duration_s,
            ..TraceConfig::new(seed, road)
        });
        let times = sample_query_times(&trace, scale.queries_per_seed(), scale.seed ^ 0xC12);
        let outcomes = run_queries(&trace, &cfg, &times);
        rups.extend(outcomes.iter().filter_map(|o| o.rde_m));
        let gps_rx = GpsBaseline::simulate(&trace, seed ^ 0xD12);
        gps.extend(times.iter().filter_map(|&t| gps_rx.rde_at(&trace, t)));
    }
    RoadOutcome { rups, gps }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the experiment.
pub fn run(p: &Params) -> Figure {
    let mut series = Vec::new();
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    let mut ratio_n = 0usize;
    let paper_rups = [3.4, 2.3, 4.2, 6.9];
    let paper_gps = [4.2, 9.9, 9.8, 21.1];

    for (i, (label, road)) in ROADS.iter().enumerate() {
        let out = run_road(&p.scale, *road);
        let m_rups = mean(&out.rups);
        let m_gps = mean(&out.gps);
        if m_rups.is_finite() && m_gps.is_finite() && m_rups > 0.0 {
            ratio_sum += m_gps / m_rups;
            ratio_n += 1;
        }
        rows.push(vec![
            label.to_string(),
            format!("{m_rups:.1}"),
            format!("{:.1}", paper_rups[i]),
            format!("{m_gps:.1}"),
            format!("{:.1}", paper_gps[i]),
        ]);
        series.push(Series::cdf(format!("RUPS, {label}"), out.rups));
        series.push(Series::cdf(format!("GPS, {label}"), out.gps));
    }

    let table = render_table(
        &[
            "environment",
            "RUPS mean (m)",
            "paper",
            "GPS mean (m)",
            "paper",
        ],
        &rows,
    );
    let mut notes: Vec<String> = table.lines().map(str::to_owned).collect();
    if ratio_n > 0 {
        notes.push(format!(
            "GPS/RUPS mean-error ratio averaged over environments: {:.1}× (paper: 2.7×)",
            ratio_sum / ratio_n as f64
        ));
    }
    Figure {
        id: "fig12".into(),
        title: "Comparison with GPS under different urban environments".into(),
        notes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rups_beats_gps_where_gps_is_weak() {
        // The headline shape on the harshest setting: under elevated roads
        // GPS degrades far more than RUPS.
        let out = run_road(&EvalScale::quick(), RoadClass::UnderElevated);
        assert!(!out.rups.is_empty(), "RUPS returned no fixes");
        assert!(!out.gps.is_empty());
        let m_rups = mean(&out.rups);
        let m_gps = mean(&out.gps);
        assert!(
            m_gps > m_rups,
            "under elevated roads GPS ({m_gps:.1}) should be worse than RUPS ({m_rups:.1})"
        );
    }

    #[test]
    fn full_figure_structure() {
        let fig = run(&quick_params());
        assert_eq!(fig.series.len(), 8);
        assert!(fig.notes.iter().any(|n| n.contains("ratio")));
    }
}

//! Trace generation: the synthetic counterpart of the paper's two
//! instrumented cars (§VI-A).
//!
//! A [`ScenarioTrace`] is one leader/follower drive through one radio
//! environment, with both vehicles' GSM-aware trajectories already bound to
//! their perceived metre marks. Experiments then sample query times and ask
//! RUPS (and GPS) for the gap.

use gsm_sim::{
    scan_trace, EnvironmentClass, GsmEnvironment, Occlusion, RadioPlacement, ScannerConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rups_core::binding::TrajectoryBinder;
use rups_core::geo::{GeoSample, GeoTrajectory};
use rups_core::gsm::GsmTrajectory;
use rups_core::pipeline::ContextSnapshot;
use serde::{Deserialize, Serialize};
use urban_sim::drive::{MetreMark, MotionProfile, OdometryModel};
use urban_sim::road::{RoadClass, Route};
use urban_sim::scenario::{FollowerParams, TwoVehicleScenario};

/// Maps the paper's road settings onto GSM propagation classes.
///
/// 4-lane urban roads sit among dense towers (semi-open, richest
/// fingerprints — the setting where the paper reports RUPS's best
/// accuracy); wide 8-lane majors and suburban roads are open; under
/// elevated roads is the close class with deck attenuation.
pub fn env_class_for_road(road: RoadClass) -> EnvironmentClass {
    match road {
        RoadClass::Suburban2Lane => EnvironmentClass::Open,
        RoadClass::Urban4Lane => EnvironmentClass::SemiOpen,
        RoadClass::Urban8Lane => EnvironmentClass::Open,
        RoadClass::UnderElevated => EnvironmentClass::Close,
    }
}

/// Default passing-big-vehicle occlusion rate per minute per road class —
/// heavy multi-lane traffic produces the §VI-C disturbances.
pub fn default_occlusion_rate(road: RoadClass) -> f64 {
    match road {
        RoadClass::Suburban2Lane => 0.15,
        RoadClass::Urban4Lane => 0.6,
        RoadClass::Urban8Lane => 1.6,
        RoadClass::UnderElevated => 0.9,
    }
}

/// Full configuration of one generated scenario trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master seed.
    pub seed: u64,
    /// Road setting.
    pub road: RoadClass,
    /// Channels in the trajectory band.
    pub n_channels: usize,
    /// Channels actually swept by the scanners (the paper's prototype scans
    /// a 115-channel subset, §VI-A). Capped at `n_channels`.
    pub scanned_channels: usize,
    /// Route length, metres.
    pub route_len_m: f64,
    /// Drive duration, seconds.
    pub duration_s: f64,
    /// Initial leader gap, metres.
    pub initial_gap_m: f64,
    /// Leader scanner: radio count.
    pub leader_radios: usize,
    /// Leader scanner placement.
    pub leader_placement: RadioPlacement,
    /// Follower scanner: radio count.
    pub follower_radios: usize,
    /// Follower scanner placement.
    pub follower_placement: RadioPlacement,
    /// Leader lane index (0 = rightmost).
    pub leader_lane: usize,
    /// Follower lane index.
    pub follower_lane: usize,
    /// Occlusion events per minute (per vehicle).
    pub occlusion_rate_per_min: f64,
    /// Use the realistic odometry/heading error model (vs ideal).
    pub realistic_odometry: bool,
    /// Lateral in-lane wander amplitude, metres (std ≈ 0.35 m for a human
    /// driver). Decorrelates the sub-metre fading between the two vehicles
    /// — without it the simulation is unrealistically favourable to RUPS.
    pub lane_wander_m: f64,
    /// FM broadcast channels fused into the fingerprint (0 = GSM only).
    /// The §VII future-work extension: each vehicle carries one FM tuner
    /// sweeping the band; FM rows are appended after the GSM rows.
    pub fm_channels: usize,
    /// Who is moving: cars (default), bicyclists or pedestrians (§VII).
    pub mobility: Mobility,
    /// Route geometry: a straight corridor (default) or a generated
    /// itinerary with curves and 90° turns.
    pub route_shape: RouteShape,
}

/// Route geometry selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteShape {
    /// One straight segment (controlled experiments).
    Straight,
    /// `Route::generate`: mostly straight with occasional curves and turns.
    Winding,
}

/// Mobility class of the tracked pair (§VII future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mobility {
    /// Cars with road-class free-flow speeds.
    Vehicle,
    /// Bicyclists (~16 km/h).
    Bicycle,
    /// Pedestrians (~5 km/h).
    Pedestrian,
}

impl Mobility {
    /// The kinematic profile for a route of the given class.
    pub fn profile(self, road: RoadClass) -> MotionProfile {
        match self {
            Mobility::Vehicle => MotionProfile::vehicle(road),
            Mobility::Bicycle => MotionProfile::bicycle(),
            Mobility::Pedestrian => MotionProfile::pedestrian(),
        }
    }
}

impl TraceConfig {
    /// The paper's reference setup on the given road: 194-channel band,
    /// 115 scanned channels, 4 front radios per car, same lane, realistic
    /// odometry, class-default occlusion rate.
    pub fn new(seed: u64, road: RoadClass) -> Self {
        Self {
            seed,
            road,
            n_channels: rups_core::channel::RGSM_900_CHANNELS,
            scanned_channels: 115,
            route_len_m: 12_000.0,
            duration_s: 600.0,
            initial_gap_m: 40.0,
            leader_radios: 4,
            leader_placement: RadioPlacement::FrontPanel,
            follower_radios: 4,
            follower_placement: RadioPlacement::FrontPanel,
            leader_lane: 0,
            follower_lane: 0,
            occlusion_rate_per_min: default_occlusion_rate(road),
            realistic_odometry: true,
            lane_wander_m: 0.30,
            fm_channels: 0,
            mobility: Mobility::Vehicle,
            route_shape: RouteShape::Straight,
        }
    }

    /// A reduced-size configuration for unit tests and benches: narrower
    /// band, shorter drive.
    pub fn quick(seed: u64, road: RoadClass) -> Self {
        Self {
            n_channels: 64,
            scanned_channels: 48,
            route_len_m: 5_000.0,
            duration_s: 240.0,
            ..Self::new(seed, road)
        }
    }
}

/// One vehicle's perceived journey: metre marks plus the bound GSM-aware
/// trajectory (raw, missing channels as NaN).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VehicleTrace {
    /// Perceived metre marks (ground-truth arc length + crossing time +
    /// measured heading).
    pub marks: Vec<MetreMark>,
    /// The bound GSM-aware trajectory, aligned with `marks`.
    pub gsm: GsmTrajectory,
}

impl VehicleTrace {
    /// Number of perceived metres.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True when the vehicle never completed a metre.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// The journey context available at query time `t`: the most recent
    /// `max_m` metres with marks at or before `t`. Returns the exchangeable
    /// snapshot (missing channels interpolated when `interpolate`) plus the
    /// ground-truth arc length of each context index (for SYN-error
    /// scoring). `None` when no context exists yet.
    pub fn context_at(
        &self,
        t: f64,
        max_m: usize,
        interpolate: bool,
        vehicle_id: Option<u64>,
    ) -> Option<(ContextSnapshot, Vec<f64>)> {
        let end = self.marks.partition_point(|m| m.t <= t);
        if end == 0 {
            return None;
        }
        let start = end.saturating_sub(max_m);
        let mut geo = GeoTrajectory::with_capacity(end - start);
        let mut true_s = Vec::with_capacity(end - start);
        for m in &self.marks[start..end] {
            geo.push(GeoSample {
                heading_rad: m.heading_meas,
                timestamp_s: m.t,
            });
            true_s.push(m.true_s);
        }
        let mut gsm = self.gsm.slice(start..end);
        if interpolate {
            gsm.interpolate_missing();
        }
        Some((
            ContextSnapshot {
                vehicle_id,
                geo,
                gsm,
                trace: None,
            },
            true_s,
        ))
    }
}

/// A complete two-vehicle scenario trace.
#[derive(Serialize, Deserialize)]
pub struct ScenarioTrace {
    /// The configuration that produced it.
    pub config: TraceConfig,
    /// The route driven.
    pub route: Route,
    /// The radio environment.
    pub env: GsmEnvironment,
    /// Ground-truth motion of both vehicles.
    pub scenario: TwoVehicleScenario,
    /// Leader's perceived trace.
    pub leader: VehicleTrace,
    /// Follower's perceived trace.
    pub follower: VehicleTrace,
    /// Occlusion events that affected the follower's scanners.
    pub occlusions: Vec<Occlusion>,
    /// The FM broadcast environment, when FM fusion is enabled.
    pub fm_env: Option<GsmEnvironment>,
}

impl ScenarioTrace {
    /// Ground-truth gap at time `t` (leader ahead = positive).
    pub fn truth_gap_at(&self, t: f64) -> f64 {
        self.scenario.gap_at(t)
    }
}

/// Draws Poisson occlusion events over `[0, duration_s)`.
fn gen_occlusions(seed: u64, duration_s: f64, rate_per_min: f64) -> Vec<Occlusion> {
    if rate_per_min <= 0.0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_s = 60.0 / rate_per_min;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -mean_gap_s * u.ln();
        if t >= duration_s {
            break;
        }
        let dur: f64 = rng.gen_range(4.0..15.0);
        let loss = rng.gen_range(10.0f64..22.0) as f32;
        out.push(Occlusion {
            start_s: t,
            end_s: (t + dur).min(duration_s),
            loss_db: loss,
        });
        t += dur;
    }
    out
}

/// The channels the scanners sweep: every active carrier first, padded with
/// the lowest inactive indices up to `scanned_channels` (the paper's
/// "selected 115 channels", §VI-A).
fn scanned_channel_set(env: &GsmEnvironment, scanned_channels: usize) -> Vec<usize> {
    let mut set = env.active_channels();
    let want = scanned_channels.min(env.n_channels());
    let mut next = 0usize;
    while set.len() < want && next < env.n_channels() {
        if !set.contains(&next) {
            set.push(next);
        }
        next += 1;
    }
    set.truncate(want);
    set.sort_unstable();
    set
}

/// Binds one vehicle's scan samples to its metre marks.
fn bind_vehicle(
    n_channels: usize,
    marks: &[MetreMark],
    scans: Vec<rups_core::binding::ScanSample>,
) -> GsmTrajectory {
    let mut binder = TrajectoryBinder::new(n_channels, f64::NEG_INFINITY);
    let mut gsm = GsmTrajectory::with_capacity(n_channels, marks.len());
    let mut scan_iter = scans.into_iter().peekable();
    for mark in marks {
        while let Some(s) = scan_iter.peek() {
            if s.timestamp_s <= mark.t {
                binder.push_scan(*s);
                scan_iter.next();
            } else {
                break;
            }
        }
        gsm.push(&binder.bind_metre(mark.t));
    }
    gsm
}

/// Generates a full scenario trace from a configuration.
pub fn generate(cfg: &TraceConfig) -> ScenarioTrace {
    let route = match cfg.route_shape {
        RouteShape::Straight => Route::straight(cfg.road, cfg.route_len_m),
        RouteShape::Winding => Route::generate(cfg.seed ^ 0x40AD, cfg.road, cfg.route_len_m),
    };
    let env = GsmEnvironment::new(
        cfg.seed ^ 0xE5F1,
        env_class_for_road(cfg.road),
        cfg.route_len_m,
        cfg.n_channels,
    );
    let fm_env = (cfg.fm_channels > 0).then(|| {
        GsmEnvironment::with_band(
            cfg.seed ^ 0xF0F0,
            env_class_for_road(cfg.road),
            gsm_sim::BandKind::FmBroadcast,
            cfg.route_len_m,
            cfg.fm_channels,
        )
    });
    let profile = cfg.mobility.profile(cfg.road);
    let follower_params = match cfg.mobility {
        Mobility::Vehicle => FollowerParams::default(),
        // Softer following for slow movers: shorter gaps, gentler gains.
        Mobility::Bicycle | Mobility::Pedestrian => FollowerParams {
            target_gap_m: cfg.initial_gap_m.min(20.0),
            gap_gain: 0.05,
            speed_gain: 0.6,
            a_max: profile.a_max,
            b_max: profile.b_max,
        },
    };
    let scenario = TwoVehicleScenario::simulate_with(
        &route,
        cfg.seed ^ 0xD21E,
        cfg.initial_gap_m,
        &follower_params,
        cfg.duration_s,
        &profile,
    )
    .with_lanes(&route, cfg.leader_lane, cfg.follower_lane);

    let odo = |vseed: u64| {
        if cfg.realistic_odometry {
            OdometryModel::realistic(cfg.seed ^ vseed)
        } else {
            OdometryModel::ideal()
        }
    };
    let leader_marks = scenario
        .leader
        .metre_marks(&route, &odo(0x1EAD), cfg.seed ^ 0x1EAD);
    let follower_marks = scenario
        .follower
        .metre_marks(&route, &odo(0xF011), cfg.seed ^ 0xF011);

    let channels = scanned_channel_set(&env, cfg.scanned_channels);
    let occlusions = gen_occlusions(
        cfg.seed ^ 0x0CC1,
        cfg.duration_s,
        cfg.occlusion_rate_per_min,
    );

    // In-lane lateral wander: a smooth, per-vehicle function of distance
    // travelled, so the two vehicles sample slightly different microscopic
    // signal tracks even in the same lane.
    let wander = |vseed: u64, drive: &urban_sim::drive::Drive, t: f64| -> f64 {
        if cfg.lane_wander_m <= 0.0 {
            return 0.0;
        }
        let s = drive.distance_at(t);
        cfg.lane_wander_m * gsm_sim::noise::noise1(cfg.seed ^ vseed, 0, s / 25.0)
    };

    // The radio field is evaluated in *unrolled route coordinates*
    // (arc length along the route, lateral offset): identical to world
    // coordinates on straight routes, and it keeps the 1-D corridor tower
    // deployment valid for winding routes — what matters to RUPS is the
    // signal structure *along the path*, which unrolling preserves.
    let leader_scans = scan_trace(
        &env,
        &ScannerConfig::new(cfg.leader_radios, cfg.leader_placement, channels.clone())
            .with_seed(cfg.seed ^ 0x5CA1),
        |t| {
            let off = scenario.leader_lane_offset_m + wander(0xAA1, &scenario.leader, t);
            (scenario.leader.distance_at(t), off)
        },
        0.0,
        cfg.duration_s,
        &[],
    );
    let follower_scans = scan_trace(
        &env,
        &ScannerConfig::new(cfg.follower_radios, cfg.follower_placement, channels)
            .with_seed(cfg.seed ^ 0x5CA2),
        |t| {
            let off = scenario.follower_lane_offset_m + wander(0xBB2, &scenario.follower, t);
            (scenario.follower.distance_at(t), off)
        },
        0.0,
        cfg.duration_s,
        &occlusions,
    );

    // FM fusion (§VII): one extra tuner per vehicle sweeps the FM band;
    // its samples land on channel rows appended after the GSM rows.
    let mut leader_scans = leader_scans;
    let mut follower_scans = follower_scans;
    if let Some(fm) = &fm_env {
        let fm_channels: Vec<usize> = (0..cfg.fm_channels).collect();
        let offset = cfg.n_channels;
        let mut fm_leader = scan_trace(
            fm,
            &ScannerConfig::new(1, cfg.leader_placement, fm_channels.clone())
                .with_seed(cfg.seed ^ 0x5FA1),
            |t| {
                let off = scenario.leader_lane_offset_m + wander(0xAA1, &scenario.leader, t);
                (scenario.leader.distance_at(t), off)
            },
            0.0,
            cfg.duration_s,
            &[],
        );
        for s in &mut fm_leader {
            s.channel += offset;
        }
        let mut fm_follower = scan_trace(
            fm,
            &ScannerConfig::new(1, cfg.follower_placement, fm_channels)
                .with_seed(cfg.seed ^ 0x5FA2),
            |t| {
                let off = scenario.follower_lane_offset_m + wander(0xBB2, &scenario.follower, t);
                (scenario.follower.distance_at(t), off)
            },
            0.0,
            cfg.duration_s,
            &occlusions,
        );
        for s in &mut fm_follower {
            s.channel += offset;
        }
        leader_scans.extend(fm_leader);
        follower_scans.extend(fm_follower);
        leader_scans.sort_by(|a, b| a.timestamp_s.total_cmp(&b.timestamp_s));
        follower_scans.sort_by(|a, b| a.timestamp_s.total_cmp(&b.timestamp_s));
    }

    let total_channels = cfg.n_channels + cfg.fm_channels;
    let leader_gsm = bind_vehicle(total_channels, &leader_marks, leader_scans);
    let follower_gsm = bind_vehicle(total_channels, &follower_marks, follower_scans);

    ScenarioTrace {
        config: cfg.clone(),
        route,
        env,
        scenario,
        leader: VehicleTrace {
            marks: leader_marks,
            gsm: leader_gsm,
        },
        follower: VehicleTrace {
            marks: follower_marks,
            gsm: follower_gsm,
        },
        occlusions,
        fm_env,
    }
}

/// A convoy trace: every vehicle's perceived journey (§V-B heavy traffic).
pub struct ConvoyTrace {
    /// The configuration used (follower scanner settings apply to all).
    pub config: TraceConfig,
    /// The route driven.
    pub route: Route,
    /// The radio environment.
    pub env: GsmEnvironment,
    /// Ground-truth convoy motion (index 0 = head).
    pub convoy: urban_sim::scenario::Convoy,
    /// Perceived traces, aligned with `convoy.drives`.
    pub vehicles: Vec<VehicleTrace>,
}

impl ConvoyTrace {
    /// Ground-truth gap between vehicles `front` and `rear` at `t`.
    pub fn truth_gap_between(&self, front: usize, rear: usize, t: f64) -> f64 {
        self.convoy.gap_between(front, rear, t)
    }
}

/// Generates an `n`-vehicle convoy trace. All vehicles share the follower
/// scanner settings of `cfg`; occlusions are disabled (the workload here is
/// neighbour count, §V-B).
pub fn generate_convoy(cfg: &TraceConfig, n: usize) -> ConvoyTrace {
    let route = Route::straight(cfg.road, cfg.route_len_m);
    let env = GsmEnvironment::new(
        cfg.seed ^ 0xE5F1,
        env_class_for_road(cfg.road),
        cfg.route_len_m,
        cfg.n_channels,
    );
    let convoy = urban_sim::scenario::Convoy::simulate(
        &route,
        cfg.seed ^ 0xC0541,
        n,
        cfg.initial_gap_m,
        &FollowerParams::default(),
        cfg.duration_s,
    );
    let channels = scanned_channel_set(&env, cfg.scanned_channels);
    let vehicles = convoy
        .drives
        .iter()
        .enumerate()
        .map(|(k, drive)| {
            let vseed = cfg.seed ^ ((k as u64 + 1) * 0x9E37);
            let odo = if cfg.realistic_odometry {
                OdometryModel::realistic(vseed)
            } else {
                OdometryModel::ideal()
            };
            let marks = drive.metre_marks(&route, &odo, vseed);
            let scans = scan_trace(
                &env,
                &ScannerConfig::new(
                    cfg.follower_radios,
                    cfg.follower_placement,
                    channels.clone(),
                )
                .with_seed(vseed),
                |t| {
                    let wobble = if cfg.lane_wander_m > 0.0 {
                        cfg.lane_wander_m
                            * gsm_sim::noise::noise1(vseed, 0, drive.distance_at(t) / 25.0)
                    } else {
                        0.0
                    };
                    (drive.distance_at(t), wobble)
                },
                0.0,
                cfg.duration_s,
                &[],
            );
            let gsm = bind_vehicle(cfg.n_channels, &marks, scans);
            VehicleTrace { marks, gsm }
        })
        .collect();
    ConvoyTrace {
        config: cfg.clone(),
        route,
        env,
        convoy,
        vehicles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_trace() -> ScenarioTrace {
        generate(&TraceConfig::quick(1, RoadClass::Urban4Lane))
    }

    #[test]
    fn trace_has_bound_trajectories() {
        let tr = quick_trace();
        assert!(!tr.leader.is_empty());
        assert!(!tr.follower.is_empty());
        assert_eq!(tr.leader.gsm.len(), tr.leader.marks.len());
        assert_eq!(tr.follower.gsm.len(), tr.follower.marks.len());
        // A fair share of cells should be measured (4 radios, 48 channels).
        let cov = tr.follower.gsm.coverage();
        assert!(cov > 0.05, "coverage {cov}");
        assert!(cov < 1.0, "a moving scanner cannot cover everything");
    }

    #[test]
    fn more_radios_give_more_coverage() {
        let one = generate(&TraceConfig {
            leader_radios: 1,
            follower_radios: 1,
            ..TraceConfig::quick(2, RoadClass::Urban4Lane)
        });
        let four = generate(&TraceConfig {
            leader_radios: 4,
            follower_radios: 4,
            ..TraceConfig::quick(2, RoadClass::Urban4Lane)
        });
        assert!(
            four.follower.gsm.coverage() > 2.0 * one.follower.gsm.coverage(),
            "4 radios: {} vs 1 radio: {}",
            four.follower.gsm.coverage(),
            one.follower.gsm.coverage()
        );
    }

    #[test]
    fn context_at_respects_time_and_length() {
        let tr = quick_trace();
        let t_mid = 150.0;
        let (snap, true_s) = tr.follower.context_at(t_mid, 100, true, Some(7)).unwrap();
        assert_eq!(snap.vehicle_id, Some(7));
        assert!(snap.len() <= 100);
        assert_eq!(snap.len(), true_s.len());
        // Every mark in the context was crossed before the query time.
        assert!(snap.geo.samples().iter().all(|s| s.timestamp_s <= t_mid));
        // Interpolation fills scanned rows; never-scanned rows stay NaN, so
        // coverage is scanned/total.
        let cov = snap.gsm.coverage();
        assert!(cov >= 48.0 / 64.0 - 0.05, "interpolated coverage {cov}");
        // Before the drive starts there is no context.
        assert!(tr.follower.context_at(-1.0, 100, true, None).is_none());
    }

    #[test]
    fn truth_gap_is_positive_and_near_target() {
        let tr = quick_trace();
        let times = tr.scenario.moving_times(120.0, 230.0, 5.0);
        assert!(!times.is_empty());
        for t in times {
            let gap = tr.truth_gap_at(t);
            assert!(gap > 0.0 && gap < 120.0, "gap {gap} at t={t}");
        }
    }

    #[test]
    fn occlusion_generation_scales_with_rate() {
        let none = gen_occlusions(1, 600.0, 0.0);
        assert!(none.is_empty());
        let some = gen_occlusions(1, 600.0, 2.0);
        // ≈20 events expected over 10 min at 2/min.
        assert!(some.len() > 8 && some.len() < 40, "events {}", some.len());
        assert!(some.windows(2).all(|w| w[1].start_s >= w[0].end_s));
        let again = gen_occlusions(1, 600.0, 2.0);
        assert_eq!(some, again);
    }

    #[test]
    fn scanned_channel_set_has_requested_size() {
        let env = GsmEnvironment::new(3, EnvironmentClass::SemiOpen, 5_000.0, 64);
        let set = scanned_channel_set(&env, 48);
        assert_eq!(set.len(), 48);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 48, "duplicates in channel set");
        // All active channels are included.
        for ch in env.active_channels() {
            assert!(set.contains(&ch));
        }
    }

    #[test]
    fn winding_routes_still_support_queries() {
        use crate::queries::{run_queries, sample_query_times, summarize_rde};
        let trace = generate(&TraceConfig {
            route_shape: RouteShape::Winding,
            ..TraceConfig::quick(13, RoadClass::Urban4Lane)
        });
        // The route really does turn.
        assert!(trace.route.segments().len() > 3);
        let cfg = rups_core::config::RupsConfig {
            n_channels: 64,
            window_channels: 24,
            ..rups_core::config::RupsConfig::default()
        };
        let times = sample_query_times(&trace, 10, 2);
        let outcomes = run_queries(&trace, &cfg, &times);
        let (mean, rate) = summarize_rde(&outcomes);
        assert!(rate > 0.4, "answer rate on winding route: {rate}");
        if let Some(m) = mean {
            assert!(m < 15.0, "mean RDE on winding route: {m:.1}");
        }
    }

    #[test]
    fn env_mapping_covers_all_roads() {
        assert_eq!(
            env_class_for_road(RoadClass::UnderElevated),
            EnvironmentClass::Close
        );
        assert_eq!(
            env_class_for_road(RoadClass::Urban4Lane),
            EnvironmentClass::SemiOpen
        );
        for road in RoadClass::ALL {
            let _ = env_class_for_road(road);
            assert!(default_occlusion_rate(road) >= 0.0);
        }
        // 8-lane roads see the heaviest passing traffic.
        assert!(
            default_occlusion_rate(RoadClass::Urban8Lane)
                > default_occlusion_rate(RoadClass::Urban4Lane)
        );
    }
}

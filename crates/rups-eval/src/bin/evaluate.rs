//! `evaluate` — regenerates every figure/table of the RUPS paper.
//!
//! ```text
//! evaluate [--quick] [--json DIR] [FIGURE ...]
//!
//!   FIGURE   any of: fig1 fig2 fig3 fig4 sec5a sec5b fig9 fig10 fig11 fig12
//!            ext-diagnosis ext-faults ext-fleet-observability
//!            ext-fleet-scale ext-fpr
//!            ext-fusion ext-multiband ext-observability ext-pedestrian
//!            ext-scalability abl-window abl-channels
//!            abl-interp   (default: all)
//!   --quick  reduced scale (fast; for smoke runs and debug builds)
//!   --json DIR  also write each figure as DIR/<id>.json
//! ```
//!
//! Run with `--release`: the accuracy experiments replay hundreds of
//! queries over ~200-channel × 900 s traces.

use rups_eval::figures::{self, EvalScale};
use rups_eval::series::Figure;
use std::io::Write as _;

struct Args {
    quick: bool,
    json_dir: Option<String>,
    figures: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        json_dir: None,
        figures: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--json" => {
                args.json_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a directory argument");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: evaluate [--quick] [--json DIR] [FIGURE ...]\n\
                     figures: fig1 fig2 fig3 fig4 sec5a sec5b fig9 fig10 fig11 fig12 \
                              ext-diagnosis ext-faults ext-fleet-observability \
                              ext-fleet-scale ext-fpr ext-fusion \
                              ext-multiband ext-observability \
                              ext-pedestrian ext-scalability \
                              abl-window abl-channels abl-interp"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => args.figures.push(other.to_string()),
        }
    }
    args
}

fn run_figure(id: &str, quick: bool, scale: EvalScale) -> Figure {
    match id {
        "fig1" => {
            let mut p = figures::fig01::Params::default();
            if quick {
                p.n_channels = 64;
            }
            figures::fig01::run(&p)
        }
        "fig2" => {
            let p = if quick {
                figures::fig02::quick_params()
            } else {
                figures::fig02::Params::default()
            };
            figures::fig02::run(&p)
        }
        "fig3" => {
            let p = if quick {
                figures::fig03::quick_params()
            } else {
                figures::fig03::Params::default()
            };
            figures::fig03::run(&p)
        }
        "fig4" => {
            let p = if quick {
                figures::fig04::quick_params()
            } else {
                figures::fig04::Params::default()
            };
            figures::fig04::run(&p)
        }
        "sec5a" => {
            let p = if quick {
                figures::cost::quick_params()
            } else {
                figures::cost::Params::default()
            };
            figures::cost::run(&p)
        }
        "sec5b" => {
            let p = if quick {
                figures::comm::quick_params()
            } else {
                figures::comm::Params::default()
            };
            figures::comm::run(&p)
        }
        "fig9" => figures::fig09::run(&figures::fig09::Params {
            scale,
            ..figures::fig09::Params::default()
        }),
        "fig10" => figures::fig10::run(&figures::fig10::Params {
            scale,
            ..figures::fig10::Params::default()
        }),
        "fig11" => figures::fig11::run(&figures::fig11::Params { scale }),
        "fig12" => figures::fig12::run(&figures::fig12::Params { scale }),
        "ext-diagnosis" => {
            let p = if quick {
                figures::ext_diagnosis::quick_params()
            } else {
                figures::ext_diagnosis::Params::default()
            };
            figures::ext_diagnosis::run(&p)
        }
        "ext-faults" => {
            let p = if quick {
                figures::ext_faults::quick_params()
            } else {
                figures::ext_faults::Params::default()
            };
            figures::ext_faults::run(&p)
        }
        "ext-fusion" => {
            let p = if quick {
                figures::ext_fusion::quick_params()
            } else {
                figures::ext_fusion::Params::default()
            };
            figures::ext_fusion::run(&p)
        }
        "ext-fpr" => {
            let p = if quick {
                figures::ext_fpr::quick_params()
            } else {
                figures::ext_fpr::Params::default()
            };
            figures::ext_fpr::run(&p)
        }
        "ext-fleet-observability" => {
            let p = if quick {
                figures::ext_fleet_observability::quick_params()
            } else {
                figures::ext_fleet_observability::Params::default()
            };
            figures::ext_fleet_observability::run(&p)
        }
        "ext-fleet-scale" => {
            let p = if quick {
                figures::ext_fleet_scale::quick_params()
            } else {
                figures::ext_fleet_scale::Params::default()
            };
            figures::ext_fleet_scale::run(&p)
        }
        "ext-observability" => {
            let p = if quick {
                figures::ext_observability::quick_params()
            } else {
                figures::ext_observability::Params::default()
            };
            figures::ext_observability::run(&p)
        }
        "ext-multiband" => figures::ext_multiband::run(&figures::ext_multiband::Params {
            scale,
            ..figures::ext_multiband::Params::default()
        }),
        "ext-pedestrian" => figures::ext_pedestrian::run(&figures::ext_pedestrian::Params {
            scale,
            ..figures::ext_pedestrian::Params::default()
        }),
        "ext-scalability" => figures::ext_scalability::run(&figures::ext_scalability::Params {
            scale,
            ..figures::ext_scalability::Params::default()
        }),
        "abl-window" => figures::ablations::window_length(&figures::ablations::Params {
            scale,
            ..figures::ablations::Params::default()
        }),
        "abl-channels" => figures::ablations::channel_count(&figures::ablations::Params {
            scale,
            ..figures::ablations::Params::default()
        }),
        "abl-interp" => figures::ablations::interpolation(&figures::ablations::Params {
            scale,
            ..figures::ablations::Params::default()
        }),
        other => {
            eprintln!("unknown figure {other}");
            std::process::exit(2);
        }
    }
}

const ALL_FIGURES: [&str; 23] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "sec5a",
    "sec5b",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ext-diagnosis",
    "ext-faults",
    "ext-fleet-observability",
    "ext-fleet-scale",
    "ext-fpr",
    "ext-fusion",
    "ext-multiband",
    "ext-observability",
    "ext-pedestrian",
    "ext-scalability",
    "abl-window",
    "abl-channels",
    "abl-interp",
];

fn main() {
    let args = parse_args();
    let scale = if args.quick {
        EvalScale::quick()
    } else {
        EvalScale::paper()
    };

    let selected: Vec<String> = if args.figures.is_empty() {
        ALL_FIGURES.iter().map(|s| s.to_string()).collect()
    } else {
        for want in &args.figures {
            if !ALL_FIGURES.contains(&want.as_str()) {
                eprintln!("unknown figure {want}");
                std::process::exit(2);
            }
        }
        args.figures.clone()
    };

    if let Some(dir) = &args.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }

    for id in &selected {
        let t0 = std::time::Instant::now();
        let fig = run_figure(id, args.quick, scale);
        let dt = t0.elapsed().as_secs_f64();
        println!("{}", fig.render_text(12));
        println!("   [{id} regenerated in {dt:.1} s]\n");
        if let Some(dir) = &args.json_dir {
            let path = format!("{dir}/{id}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            let json = serde_json::to_string_pretty(&fig).expect("serialize figure");
            f.write_all(json.as_bytes()).expect("write json");
            println!("   [wrote {path}]");
        }
    }
}

//! # rups-eval
//!
//! The trace-driven experiment harness: regenerates every figure and table
//! of the RUPS paper's empirical study (§III) and evaluation (§VI) on the
//! synthetic substrate crates.
//!
//! Each `figures::figXX` module exposes a `run(&Params) -> Figure` function;
//! the `evaluate` binary runs them all and prints the resulting series and
//! headline numbers, optionally dumping JSON for plotting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod queries;
pub mod replay;
pub mod series;
pub mod tracegen;

pub use queries::{query_at, run_queries, sample_query_times, GpsBaseline, QueryOutcome};
pub use series::{Figure, SampleStats, Series};
pub use tracegen::{
    generate, generate_convoy, ConvoyTrace, Mobility, ScenarioTrace, TraceConfig, VehicleTrace,
};

//! Property-based tests of the GPS baseline error model.

use gps_sim::{relative_distance_gps, GpsErrorParams, GpsFix, GpsReceiver};
use proptest::prelude::*;
use urban_sim::road::RoadClass;

fn any_road() -> impl Strategy<Value = RoadClass> {
    prop_oneof![
        Just(RoadClass::Suburban2Lane),
        Just(RoadClass::Urban4Lane),
        Just(RoadClass::Urban8Lane),
        Just(RoadClass::UnderElevated),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fixes_track_the_true_position_within_model_bounds(
        road in any_road(),
        seed in 0u64..500,
        x in -1e5f64..1e5,
        y in -1e5f64..1e5,
    ) {
        let mut rx = GpsReceiver::new(road, seed);
        let p = *rx.params();
        // Worst case: GM 5σ plus a 5σ multipath jump.
        let bound = 5.0 * p.sigma_m + 5.0 * p.multipath_sigma_m;
        for i in 0..50 {
            if let Some(fix) = rx.fix(i as f64, (x, y)) {
                let err = ((fix.pos.0 - x).powi(2) + (fix.pos.1 - y).powi(2)).sqrt();
                prop_assert!(err < bound, "error {err} exceeds 5σ bound {bound}");
                prop_assert_eq!(fix.t, i as f64);
            }
        }
    }

    #[test]
    fn error_process_is_independent_of_true_position(
        road in any_road(),
        seed in 0u64..200,
    ) {
        // Same seed, different true tracks → identical error vectors.
        let mut a = GpsReceiver::new(road, seed);
        let mut b = GpsReceiver::new(road, seed);
        for i in 0..30 {
            let t = i as f64;
            let fa = a.fix(t, (0.0, 0.0));
            let fb = b.fix(t, (5_000.0, -300.0));
            match (fa, fb) {
                (Some(fa), Some(fb)) => {
                    let ea = (fa.pos.0, fa.pos.1);
                    let eb = (fb.pos.0 - 5_000.0, fb.pos.1 + 300.0);
                    prop_assert!((ea.0 - eb.0).abs() < 1e-9);
                    prop_assert!((ea.1 - eb.1).abs() < 1e-9);
                }
                (None, None) => {}
                other => prop_assert!(false, "outage divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn relative_distance_is_antisymmetric_and_rotation_consistent(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        heading in -3.0f64..3.0,
    ) {
        let a = GpsFix { t: 0.0, pos: (ax, ay) };
        let b = GpsFix { t: 0.0, pos: (bx, by) };
        let d_ab = relative_distance_gps(&a, &b, heading);
        let d_ba = relative_distance_gps(&b, &a, heading);
        prop_assert!((d_ab + d_ba).abs() < 1e-9);
        // The projection never exceeds the Euclidean distance.
        let euclid = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        prop_assert!(d_ab.abs() <= euclid + 1e-9);
        // Heading + π flips the sign.
        let d_flipped = relative_distance_gps(&a, &b, heading + std::f64::consts::PI);
        prop_assert!((d_ab + d_flipped).abs() < 1e-9);
    }

    #[test]
    fn custom_params_respected(
        sigma in 0.5f64..30.0,
        seed in 0u64..100,
    ) {
        let params = GpsErrorParams {
            sigma_m: sigma,
            tau_s: 30.0,
            outage_prob: 0.0,
            multipath_prob: 0.0,
            multipath_sigma_m: 1.0,
        };
        let mut rx = GpsReceiver::with_params(params, seed);
        let mut sum_sq = 0.0;
        let mut n = 0usize;
        // Sample sparsely (≫ τ apart) so draws are near-independent.
        for i in 0..40 {
            let fix = rx.fix(i as f64 * 200.0, (0.0, 0.0)).expect("no outages configured");
            sum_sq += fix.pos.0 * fix.pos.0 + fix.pos.1 * fix.pos.1;
            n += 2;
        }
        let rms = (sum_sq / n as f64).sqrt();
        prop_assert!(
            rms > sigma * 0.55 && rms < sigma * 1.6,
            "per-axis RMS {rms} should track σ = {sigma}"
        );
    }
}

//! # gps-sim
//!
//! GPS receiver error model — the baseline RUPS is compared against
//! (Fig. 12).
//!
//! The paper pits RUPS against plain GPS because both need no line of
//! sight, no special hardware and no infrastructure. GPS relative-distance
//! errors in their Shanghai measurements average 4.2 m on open 2-lane
//! suburban roads but degrade to ~10 m on built-up urban roads and 21 m
//! under elevated expressways ("concrete forest" effect, §I).
//!
//! We model a receiver's horizontal error as a first-order Gauss–Markov
//! process (slowly wandering atmospheric/ephemeris error) plus an
//! environment-dependent multipath mixture: occasional reflected-signal
//! jumps in urban canyons, and outages plus large errors under elevated
//! decks. Two receivers' errors are independent — conservative for shared
//! atmospheric error, but multipath (the dominant urban term) genuinely is
//! independent between vehicles tens of metres apart.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use urban_sim::road::RoadClass;

/// One GPS position fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Fix timestamp, seconds.
    pub t: f64,
    /// Reported position (metres, local frame).
    pub pos: (f64, f64),
}

/// Error-model parameters of one environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsErrorParams {
    /// Standard deviation of the Gauss–Markov error per axis, metres.
    pub sigma_m: f64,
    /// Gauss–Markov correlation time, seconds.
    pub tau_s: f64,
    /// Probability that any one fix is lost (no satellite lock).
    pub outage_prob: f64,
    /// Probability that a fix carries an extra multipath jump.
    pub multipath_prob: f64,
    /// Standard deviation of a multipath jump per axis, metres.
    pub multipath_sigma_m: f64,
}

impl GpsErrorParams {
    /// Parameters per road setting, calibrated so that the *relative*
    /// distance error between two independent receivers lands near the
    /// paper's measured means (4.2 / 9.9 / 9.8 / 21.1 m, §VI-D).
    pub fn for_class(class: RoadClass) -> Self {
        match class {
            RoadClass::Suburban2Lane => GpsErrorParams {
                sigma_m: 3.5,
                tau_s: 45.0,
                outage_prob: 0.0,
                multipath_prob: 0.02,
                multipath_sigma_m: 6.0,
            },
            RoadClass::Urban4Lane => GpsErrorParams {
                sigma_m: 7.0,
                tau_s: 35.0,
                outage_prob: 0.01,
                multipath_prob: 0.15,
                multipath_sigma_m: 12.0,
            },
            RoadClass::Urban8Lane => GpsErrorParams {
                sigma_m: 7.0,
                tau_s: 35.0,
                outage_prob: 0.005,
                multipath_prob: 0.14,
                multipath_sigma_m: 12.0,
            },
            RoadClass::UnderElevated => GpsErrorParams {
                sigma_m: 13.0,
                tau_s: 25.0,
                outage_prob: 0.15,
                multipath_prob: 0.35,
                multipath_sigma_m: 22.0,
            },
        }
    }
}

/// A stateful simulated GPS receiver producing 1 Hz fixes.
#[derive(Debug, Clone)]
pub struct GpsReceiver {
    params: GpsErrorParams,
    rng: StdRng,
    err: (f64, f64),
    last_t: Option<f64>,
}

impl GpsReceiver {
    /// A receiver operating in `class` conditions, seeded deterministically.
    pub fn new(class: RoadClass, seed: u64) -> Self {
        Self::with_params(GpsErrorParams::for_class(class), seed)
    }

    /// A receiver with explicit parameters.
    pub fn with_params(params: GpsErrorParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Start the Gauss–Markov state in steady state.
        let n = Normal::new(0.0, params.sigma_m).expect("sigma must be positive");
        let err = (n.sample(&mut rng), n.sample(&mut rng));
        Self {
            params,
            rng,
            err,
            last_t: None,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &GpsErrorParams {
        &self.params
    }

    /// Advances the error process to time `t` and returns a fix for the
    /// given true position — or `None` during an outage. Call with
    /// non-decreasing timestamps.
    pub fn fix(&mut self, t: f64, true_pos: (f64, f64)) -> Option<GpsFix> {
        let dt = match self.last_t {
            Some(prev) => (t - prev).max(0.0),
            None => 1.0,
        };
        self.last_t = Some(t);

        // First-order Gauss–Markov propagation.
        let rho = (-dt / self.params.tau_s).exp();
        let drive_sigma = self.params.sigma_m * (1.0 - rho * rho).sqrt();
        let n = Normal::new(0.0, drive_sigma.max(1e-9)).expect("positive sigma");
        self.err.0 = rho * self.err.0 + n.sample(&mut self.rng);
        self.err.1 = rho * self.err.1 + n.sample(&mut self.rng);

        if self.rng.gen::<f64>() < self.params.outage_prob {
            return None;
        }

        let mut pos = (true_pos.0 + self.err.0, true_pos.1 + self.err.1);
        if self.rng.gen::<f64>() < self.params.multipath_prob {
            let m = Normal::new(0.0, self.params.multipath_sigma_m).expect("positive sigma");
            pos.0 += m.sample(&mut self.rng);
            pos.1 += m.sample(&mut self.rng);
        }
        Some(GpsFix { t, pos })
    }
}

/// Relative distance between two GPS fixes projected on the road direction
/// `heading_rad` — how a GPS-based RDF solution would report the front-rear
/// gap. Positive = `front` is ahead along the heading.
pub fn relative_distance_gps(front: &GpsFix, rear: &GpsFix, heading_rad: f64) -> f64 {
    let dx = front.pos.0 - rear.pos.0;
    let dy = front.pos.1 - rear.pos.1;
    dx * heading_rad.cos() + dy * heading_rad.sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_is_deterministic_per_seed() {
        let mut a = GpsReceiver::new(RoadClass::Urban4Lane, 7);
        let mut b = GpsReceiver::new(RoadClass::Urban4Lane, 7);
        for i in 0..50 {
            assert_eq!(a.fix(i as f64, (0.0, 0.0)), b.fix(i as f64, (0.0, 0.0)));
        }
    }

    #[test]
    fn error_magnitude_tracks_environment() {
        let mean_abs_err = |class: RoadClass, seed: u64| {
            let mut rx = GpsReceiver::new(class, seed);
            let mut sum = 0.0;
            let mut n = 0;
            for i in 0..5_000 {
                if let Some(fix) = rx.fix(i as f64, (0.0, 0.0)) {
                    sum += (fix.pos.0 * fix.pos.0 + fix.pos.1 * fix.pos.1).sqrt();
                    n += 1;
                }
            }
            sum / n as f64
        };
        let suburb = mean_abs_err(RoadClass::Suburban2Lane, 1);
        let urban = mean_abs_err(RoadClass::Urban4Lane, 2);
        let elevated = mean_abs_err(RoadClass::UnderElevated, 3);
        assert!(suburb < urban, "suburb {suburb} vs urban {urban}");
        assert!(urban < elevated, "urban {urban} vs elevated {elevated}");
        // Nominal GPS accuracy is ~15 m (§I); suburb should be well below,
        // elevated around or above it.
        assert!(suburb > 2.0 && suburb < 8.0, "suburb error {suburb}");
        assert!(elevated > 12.0, "elevated error {elevated}");
    }

    #[test]
    fn outages_happen_under_elevated_roads() {
        let mut rx = GpsReceiver::new(RoadClass::UnderElevated, 11);
        let lost = (0..2_000)
            .filter(|&i| rx.fix(i as f64, (0.0, 0.0)).is_none())
            .count();
        let frac = lost as f64 / 2_000.0;
        assert!((frac - 0.15).abs() < 0.03, "outage fraction {frac}");
        let mut rx = GpsReceiver::new(RoadClass::Suburban2Lane, 12);
        let lost = (0..2_000)
            .filter(|&i| rx.fix(i as f64, (0.0, 0.0)).is_none())
            .count();
        assert_eq!(lost, 0);
    }

    #[test]
    fn error_is_temporally_correlated() {
        // Consecutive 1 Hz errors should be close (GM with τ = 45 s), while
        // the long-run spread reaches the full σ.
        let mut rx = GpsReceiver::new(RoadClass::Suburban2Lane, 5);
        let mut errs = Vec::new();
        for i in 0..1_200 {
            if let Some(f) = rx.fix(i as f64, (0.0, 0.0)) {
                errs.push(f.pos.0);
            }
        }
        let step_rms: f64 = (errs.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum::<f64>()
            / (errs.len() - 1) as f64)
            .sqrt();
        let sigma: f64 = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(
            step_rms < sigma * 0.5,
            "1 s error steps (rms {step_rms}) should be far below σ ({sigma})"
        );
    }

    #[test]
    fn relative_distance_projection() {
        let a = GpsFix {
            t: 0.0,
            pos: (100.0, 0.0),
        };
        let b = GpsFix {
            t: 0.0,
            pos: (60.0, 0.0),
        };
        assert!((relative_distance_gps(&a, &b, 0.0) - 40.0).abs() < 1e-12);
        // Perpendicular offset does not contribute.
        let c = GpsFix {
            t: 0.0,
            pos: (60.0, 25.0),
        };
        assert!((relative_distance_gps(&a, &c, 0.0) - 40.0).abs() < 1e-12);
        // Heading north.
        let d = GpsFix {
            t: 0.0,
            pos: (0.0, 70.0),
        };
        let e = GpsFix {
            t: 0.0,
            pos: (0.0, 10.0),
        };
        assert!((relative_distance_gps(&d, &e, std::f64::consts::FRAC_PI_2) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_scale_matches_paper_band() {
        // Two independent receivers in the same environment, true gap 40 m:
        // the mean |error| of the GPS gap estimate should land in the
        // paper's ballpark per environment (±40 %).
        let mean_rde = |class: RoadClass| {
            let mut rx1 = GpsReceiver::new(class, 100);
            let mut rx2 = GpsReceiver::new(class, 200);
            let mut sum = 0.0;
            let mut n = 0;
            for i in 0..4_000 {
                let t = i as f64;
                let (Some(f1), Some(f2)) = (rx1.fix(t, (140.0, 0.0)), rx2.fix(t, (100.0, 0.0)))
                else {
                    continue;
                };
                let d = relative_distance_gps(&f1, &f2, 0.0);
                sum += (d - 40.0).abs();
                n += 1;
            }
            sum / n as f64
        };
        let suburb = mean_rde(RoadClass::Suburban2Lane);
        let urban4 = mean_rde(RoadClass::Urban4Lane);
        let elevated = mean_rde(RoadClass::UnderElevated);
        assert!(
            (2.5..=6.5).contains(&suburb),
            "suburb RDE {suburb} (paper: 4.2)"
        );
        assert!(
            (6.0..=14.0).contains(&urban4),
            "urban RDE {urban4} (paper: 9.9)"
        );
        assert!(
            (13.0..=30.0).contains(&elevated),
            "elevated RDE {elevated} (paper: 21.1)"
        );
    }
}

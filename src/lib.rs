//! # rups
//!
//! Umbrella crate of the RUPS workspace — a from-scratch reproduction of
//! *"RUPS: Fixing Relative Distances among Urban Vehicles with
//! Context-Aware Trajectories"* (IEEE IPDPS 2016).
//!
//! RUPS answers one question for a moving vehicle: **how far ahead (or
//! behind) is that neighbour, right now?** — using only cheap on-board
//! motion sensors, a GSM receiver and vehicle-to-vehicle broadcasts. No
//! GPS, no signal maps, no clock sync, no line of sight.
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] (`rups-core`) — the algorithms: GSM-aware trajectories, the
//!   double-sliding SYN-point search, relative-distance resolution, and the
//!   [`core::pipeline::RupsNode`] public API.
//! * [`gsm`] (`gsm-sim`) — the synthetic GSM radio environment.
//! * [`urban`] (`urban-sim`) — roads, vehicle dynamics, sensor simulation.
//! * [`gps`] (`gps-sim`) — the GPS baseline error model.
//! * [`v2v`] (`v2v-sim`) — the DSRC/WSM codec, link and tracking protocol.
//! * [`fuse`] (`rups-fuse`) — cooperative fix-graph fusion: weighted
//!   least-squares over a neighbourhood's graded fixes with outlier
//!   rejection.
//! * [`fleet`] (`rups-fleet`) — the geographically sharded many-vehicle
//!   serving layer: uniform-grid cell index with 3×3 halo candidate
//!   enumeration, shared-nothing per-shard engines with cross-shard
//!   beacon routing, and a deterministic work-stealing epoch scheduler.
//! * [`eval`] (`rups-eval`) — the experiment harness regenerating every
//!   paper figure (also available as the `evaluate` binary).
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use gps_sim as gps;
pub use gsm_sim as gsm;
pub use rups_core as core;
pub use rups_eval as eval;
pub use rups_fleet as fleet;
pub use rups_fuse as fuse;
pub use urban_sim as urban;
pub use v2v_sim as v2v;

/// One-stop imports for application code.
pub mod prelude {
    pub use rups_core::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_align() {
        // The facade must expose the same types the sub-crates define.
        let cfg = crate::prelude::RupsConfig::default();
        assert_eq!(cfg.n_channels, crate::core::channel::RGSM_900_CHANNELS);
    }
}
